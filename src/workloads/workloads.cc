#include "src/workloads/workloads.h"

#include <algorithm>
#include <functional>
#include <memory>

#include "src/base/assert.h"
#include "src/base/strings.h"
#include "src/instr/readout.h"
#include "src/kern/fs.h"
#include "src/kern/user_env.h"
#include "src/profhw/smart_socket.h"

namespace hwprof {

Bytes PatternBytes(std::size_t n, std::uint8_t seed) {
  Bytes out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<std::uint8_t>((i * 131 + seed * 17 + 3) & 0xFF);
  }
  return out;
}

NetReceiveResult RunNetworkReceive(Testbed& tb, Nanoseconds duration,
                                   std::uint64_t stream_bytes, bool verify_payload) {
  Kernel& k = tb.kernel();
  auto sender = std::make_shared<SenderHost>(tb.machine(), k.wire(), kSenderNodeId,
                                             kSenderIpAddr);
  auto result = std::make_shared<NetReceiveResult>();
  auto cursor = std::make_shared<std::uint64_t>(0);  // stream offset verified so far

  k.Spawn(
      "netrecv",
      [result, cursor, verify_payload, &k](UserEnv& env) {
        const int fd = env.Socket(/*tcp=*/true);
        if (fd < 0 || !env.Bind(fd, 4000) || !env.Listen(fd)) {
          return;
        }
        const int conn = env.Accept(fd);
        if (conn < 0) {
          return;
        }
        while (true) {
          Bytes chunk;
          const long n = env.Recv(conn, 2048, &chunk);
          if (n <= 0) {
            break;
          }
          result->bytes_received += static_cast<std::uint64_t>(n);
          if (verify_payload) {
            for (std::uint8_t byte : chunk) {
              if (byte != SenderHost::PayloadByte(*cursor)) {
                result->integrity_ok = false;
              }
              ++(*cursor);
            }
          }
        }
        result->done_at = k.Now();
      },
      /*resident_pages=*/200);

  // Give the listener a moment to reach accept(), then open the stream.
  tb.machine().events().ScheduleAt(tb.machine().Now() + 20 * kMillisecond,
                                   [sender, stream_bytes] {
                                     sender->StartStream(kPcIpAddr, 4000, stream_bytes);
                                   });

  const Nanoseconds start = k.Now();
  k.Run(start + duration);
  result->elapsed = k.Now() - start;
  result->bytes_acked = sender->bytes_acked();
  result->segments_sent = sender->segments_sent();
  result->retransmits = sender->retransmits();
  result->rx_dropped = k.net().we().rx_dropped();
  const Nanoseconds effective =
      result->done_at != 0 ? result->done_at - start : result->elapsed;
  if (effective > 0) {
    result->throughput_kb_s = static_cast<double>(result->bytes_received) /
                              (static_cast<double>(effective) / 1e9) / 1024.0;
  }
  return *result;
}

StreamingRunResult RunStreamingNetworkReceive(Testbed& tb, Nanoseconds duration,
                                              std::uint64_t stream_bytes,
                                              Nanoseconds drain_period,
                                              const std::string& stream_path) {
  HWPROF_CHECK_MSG(tb.profiler().double_buffered(),
                   "the streaming receive needs a double-buffered board");
  HWPROF_CHECK(drain_period > 0);
  auto result = std::make_shared<StreamingRunResult>();
  const bool save = !stream_path.empty();
  if (save && !SaveStreamHeader(stream_path, tb.profiler().timer().bits(),
                                tb.profiler().timer().clock_hz())) {
    result->io_ok = false;
  }

  // The periodic host-side drain, running as a simulated-time event so its
  // bus cycles (and its profdrain triggers) interleave with the workload.
  auto stopped = std::make_shared<bool>(false);
  auto drain = std::make_shared<std::function<void()>>();
  *drain = [&tb, result, drain, drain_period, save, stream_path, stopped] {
    if (*stopped) {
      return;
    }
    ++result->polls;
    TraceChunk chunk;
    if (DrainChunk(tb.machine(), tb.instr(), tb.profiler(), &chunk)) {
      ++result->drains;
      if (save && !AppendStreamChunk(stream_path, chunk)) {
        result->io_ok = false;
      }
      result->chunks.push_back(std::move(chunk));
    }
    tb.machine().events().ScheduleAt(tb.machine().Now() + drain_period,
                                     [drain] { (*drain)(); });
  };
  tb.machine().events().ScheduleAt(tb.machine().Now() + drain_period,
                                   [drain] { (*drain)(); });

  result->net = RunNetworkReceive(tb, duration, stream_bytes, /*verify_payload=*/false);
  *stopped = true;

  tb.profiler().Disarm();
  const std::size_t tail_start = result->chunks.size();
  DrainRemaining(tb.machine(), tb.instr(), tb.profiler(), &result->chunks);
  for (std::size_t i = tail_start; save && i < result->chunks.size(); ++i) {
    if (!AppendStreamChunk(stream_path, result->chunks[i])) {
      result->io_ok = false;
    }
  }
  for (const TraceChunk& c : result->chunks) {
    result->events_drained += c.events.size();
    result->events_dropped += c.dropped_before;
  }
  return *result;
}

ForkExecResult RunForkExec(Testbed& tb, int iterations, Nanoseconds max_time,
                           int shell_resident_pages, std::size_t image_bytes) {
  Kernel& k = tb.kernel();
  k.fs().InstallFile("/bin/test", PatternBytes(image_bytes));
  auto result = std::make_shared<ForkExecResult>();

  k.Spawn(
      "sh",
      [result, iterations, &k](UserEnv& env) {
        for (int i = 0; i < iterations && !k.stopping(); ++i) {
          const Nanoseconds t0 = k.Now();
          const int pid = env.Vfork([](UserEnv& child) {
            child.Execve("/bin/test");
            child.Compute(500 * kMicrosecond);  // the test program's own work
            child.Exit(0);
          });
          (void)pid;
          env.Wait();
          result->cycle_times.push_back(k.Now() - t0);
          ++result->iterations_done;
          env.Print(StrFormat("run %d done\n", i));
        }
      },
      shell_resident_pages);

  const Nanoseconds start = k.Now();
  k.Run(start + max_time);
  result->elapsed = k.Now() - start;
  return *result;
}

FsWriteResult RunFsWrite(Testbed& tb, std::uint64_t total_bytes, Nanoseconds max_time) {
  Kernel& k = tb.kernel();
  auto result = std::make_shared<FsWriteResult>();

  auto done_at = std::make_shared<Nanoseconds>(0);
  auto busy_at_done = std::make_shared<Nanoseconds>(0);
  k.Spawn("writer", [result, done_at, busy_at_done, total_bytes, &k](UserEnv& env) {
    const int fd = env.Open("/out", /*create=*/true);
    if (fd < 0) {
      return;
    }
    const Bytes block = PatternBytes(kFsBlockBytes);
    while (result->bytes_written < total_bytes && !k.stopping()) {
      if (env.Write(fd, block) <= 0) {
        break;
      }
      result->bytes_written += block.size();
    }
    env.Close(fd);
    // Drain the async writes so the measurement covers the full storm.
    k.fs().SyncAll();
    *done_at = k.Now();
    *busy_at_done = k.cpu().busy_ns();
  });

  const Nanoseconds start = k.Now();
  const Nanoseconds busy0 = k.cpu().busy_ns();
  k.Run(start + max_time);
  const Nanoseconds end = *done_at != 0 ? *done_at : k.Now();
  const Nanoseconds busy_end = *done_at != 0 ? *busy_at_done : k.cpu().busy_ns();
  result->elapsed = end - start;
  result->disk_writes = k.fs().disk().writes_completed();
  if (result->elapsed > 0) {
    result->cpu_busy_pct =
        100.0 * static_cast<double>(busy_end - busy0) / static_cast<double>(result->elapsed);
  }
  return *result;
}

FsReadResult RunFsRandomReads(Testbed& tb, int reads, Nanoseconds max_time) {
  Kernel& k = tb.kernel();
  // One large file spread across the platter so every uncached read seeks.
  constexpr std::size_t kFileBytes = 3 * kMiB;
  const Bytes contents = PatternBytes(kFileBytes);
  k.fs().InstallFileScattered("/data", contents, /*stride=*/9);
  auto result = std::make_shared<FsReadResult>();

  k.Spawn("reader", [result, reads, &contents, &k](UserEnv& env) {
    const int fd = env.Open("/data", false);
    if (fd < 0) {
      return;
    }
    Rng rng(42);
    for (int i = 0; i < reads && !k.stopping(); ++i) {
      // Random block-aligned offset; reopen-by-seek is modelled by just
      // reading at the offset through a fresh fd each time.
      const std::uint64_t block = rng.NextBelow(kFileBytes / kFsBlockBytes);
      const std::uint64_t off = block * kFsBlockBytes;
      Bytes out;
      const Nanoseconds t0 = k.Now();
      const long n = env.ReadAt(fd, off, kFsBlockBytes, &out);
      result->read_times.push_back(k.Now() - t0);
      if (n > 0) {
        result->bytes_read += static_cast<std::uint64_t>(n);
        for (long j = 0; j < n; ++j) {
          if (out[static_cast<std::size_t>(j)] != contents[off + static_cast<std::size_t>(j)]) {
            result->data_ok = false;
          }
        }
      }
    }
    env.Close(fd);
  });

  const Nanoseconds start = k.Now();
  k.Run(start + max_time);
  return *result;
}

TransferCompareResult RunNfsVsFtp(Testbed& tb_nfs, Testbed& tb_tcp, std::uint64_t bytes) {
  TransferCompareResult result;

  // --- NFS leg -----------------------------------------------------------------
  {
    Kernel& k = tb_nfs.kernel();
    auto server = std::make_shared<NfsServerHost>(tb_nfs.machine(), k.wire());
    const std::uint32_t fh = server->Export("bigfile", PatternBytes(bytes, 7));
    auto done_at = std::make_shared<Nanoseconds>(0);
    auto got = std::make_shared<std::uint64_t>(0);
    auto ok = std::make_shared<bool>(true);
    k.Spawn("nfsread", [fh, done_at, got, ok, bytes, &k](UserEnv& env) {
      k.nfs().Init();
      Bytes out;
      const long n = env.NfsRead(fh, 0, static_cast<std::uint32_t>(bytes), &out);
      *got = n > 0 ? static_cast<std::uint64_t>(n) : 0;
      const Bytes expect = PatternBytes(bytes, 7);
      *ok = out.size() == expect.size() && out == expect;
      *done_at = k.Now();
    });
    const Nanoseconds start = k.Now();
    k.Run(start + Sec(30));
    result.nfs_bytes = *got;
    result.nfs_data_ok = *ok;
    result.nfs_elapsed = (*done_at != 0 ? *done_at : k.Now()) - start;
    if (result.nfs_elapsed > 0) {
      result.nfs_kb_s = static_cast<double>(result.nfs_bytes) /
                        (static_cast<double>(result.nfs_elapsed) / 1e9) / 1024.0;
    }
  }

  // --- FTP-style TCP leg ----------------------------------------------------------
  {
    NetReceiveResult tcp = RunNetworkReceive(tb_tcp, Sec(30), bytes, /*verify=*/false);
    result.tcp_bytes = tcp.bytes_received;
    result.tcp_elapsed = tcp.done_at != 0 ? tcp.done_at : tcp.elapsed;
    if (result.tcp_elapsed > 0) {
      result.tcp_kb_s = static_cast<double>(result.tcp_bytes) /
                        (static_cast<double>(result.tcp_elapsed) / 1e9) / 1024.0;
    }
  }
  return result;
}

MixedResult RunMixed(Testbed& tb, Nanoseconds duration) {
  Kernel& k = tb.kernel();
  k.fs().InstallFile("/bin/tool", PatternBytes(64 * 1024));
  k.fs().InstallFile("/etc/conf", PatternBytes(16 * 1024));

  // Page toucher: vm_fault traffic.
  k.Spawn(
      "toucher",
      [&k](UserEnv& env) {
        while (!k.stopping()) {
          env.TouchPages(40, /*write=*/true);
          env.Compute(2 * kMillisecond);
        }
      },
      600);

  // Forker: vfork/execve/kmem_alloc/copyinstr traffic.
  k.Spawn(
      "forker",
      [&k](UserEnv& env) {
        while (!k.stopping()) {
          env.Vfork([](UserEnv& child) {
            child.Execve("/bin/tool");
            child.Exit(0);
          });
          env.Wait();
          env.Compute(5 * kMillisecond);
        }
      },
      400);

  // File reader: namei/copyinstr/bread and malloc/free via descriptors.
  k.Spawn("filer", [&k](UserEnv& env) {
    while (!k.stopping()) {
      const int fd = env.Open("/etc/conf", false);
      if (fd >= 0) {
        Bytes out;
        env.Read(fd, 4096, &out);
        env.Close(fd);
      }
      env.Compute(1 * kMillisecond);
    }
  });

  // Background network chatter: splnet/splx/spl0 and driver traffic.
  auto sender = std::make_shared<SenderHost>(tb.machine(), k.wire(), kSenderNodeId,
                                             kSenderIpAddr);
  k.Spawn("nettalk", [sender, &k](UserEnv& env) {
    const int fd = env.Socket(true);
    if (fd < 0 || !env.Bind(fd, 4000) || !env.Listen(fd)) {
      return;
    }
    const int conn = env.Accept(fd);
    while (conn >= 0 && !k.stopping()) {
      Bytes chunk;
      if (env.Recv(conn, 4096, &chunk) <= 0) {
        break;
      }
    }
  });
  tb.machine().events().ScheduleAt(tb.machine().Now() + 50 * kMillisecond, [sender] {
    sender->StartStream(kPcIpAddr, 4000, 4 * kMiB);
  });

  MixedResult result;
  const Nanoseconds start = k.Now();
  k.Run(start + duration);
  result.elapsed = k.Now() - start;
  return result;
}

LookupResult RunLookupMix(Testbed& tb, int opens_per_worker, Nanoseconds max_time) {
  Kernel& k = tb.kernel();
  // A small working set of deep paths: the same directories walked over and
  // over, so a 64-entry name cache covers every component.
  static const char* const kPaths[] = {
      "/usr/local/lib/app/conf/settings",
      "/usr/local/lib/app/conf/theme",
      "/usr/local/lib/app/data/table",
      "/usr/share/dict/words",
      "/etc/rc/conf/net",
      "/etc/rc/conf/disk",
  };
  std::uint8_t seed = 1;
  for (const char* path : kPaths) {
    k.fs().InstallFile(path, PatternBytes(2048, seed++));
  }

  auto result = std::make_shared<LookupResult>();
  auto workers_left = std::make_shared<int>(2);
  for (int worker = 0; worker < 2; ++worker) {
    k.Spawn("lookup", [&k, result, workers_left, worker, opens_per_worker](UserEnv& env) {
      std::size_t next = static_cast<std::size_t>(worker) * 3;
      for (int done = 0; done < opens_per_worker && !k.stopping(); ++done) {
        const char* path = kPaths[next % (sizeof(kPaths) / sizeof(kPaths[0]))];
        ++next;
        const int fd = env.Open(path, false);
        if (fd < 0) {
          ++result->open_failures;
          continue;
        }
        Bytes out;
        env.Read(fd, 512, &out);
        env.Close(fd);
        ++result->opens_done;
        env.Compute(500 * kMicrosecond);
      }
      if (--*workers_left == 0) {
        result->done_at = k.Now();
      }
    });
  }

  const Nanoseconds start = k.Now();
  k.Run(start + max_time);
  result->elapsed = k.Now() - start;
  return *result;
}

}  // namespace hwprof
