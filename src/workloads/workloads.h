// The paper's experiments, packaged as reusable workload drivers shared by
// the examples, tests and benchmark harnesses.

#ifndef HWPROF_SRC_WORKLOADS_WORKLOADS_H_
#define HWPROF_SRC_WORKLOADS_WORKLOADS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/base/units.h"
#include "src/kern/net_hosts.h"
#include "src/kern/net_pkt.h"
#include "src/kern/nfs.h"
#include "src/workloads/testbed.h"

namespace hwprof {

// --- Network receive (Figures 3 & 4) -----------------------------------------
// A Sparcstation-class sender saturates the wire with a TCP stream; the PC
// listens, accepts, and reads/discards. The PC is CPU-bound throughout.

struct NetReceiveResult {
  std::uint64_t bytes_received = 0;
  std::uint64_t bytes_acked = 0;      // sender's view
  std::uint64_t segments_sent = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t rx_dropped = 0;       // board-ring overruns
  bool integrity_ok = true;           // received bytes match the sent stream
  Nanoseconds elapsed = 0;
  Nanoseconds done_at = 0;            // virtual time the receiver saw EOF (0 if never)
  double throughput_kb_s = 0.0;
};

NetReceiveResult RunNetworkReceive(Testbed& tb, Nanoseconds duration,
                                   std::uint64_t stream_bytes, bool verify_payload = true);

// --- Streaming capture of the saturating receive ------------------------------
// The same workload run long enough to blow far past the 16K event RAM,
// captured on a double-buffered board: a periodic kernel-side drain
// (profdrain) empties each sealed bank through the drain ports while
// capture continues in the other bank. Banks the drain loses the race for
// are dropped by the board and accounted in the chunk headers.

struct StreamingRunResult {
  NetReceiveResult net;
  std::vector<TraceChunk> chunks;  // drained banks, in capture order
  std::uint64_t events_drained = 0;
  std::uint64_t events_dropped = 0;  // sum of the chunk headers
  std::uint64_t drains = 0;          // polls that found a sealed bank
  std::uint64_t polls = 0;
  bool io_ok = true;  // stream-file writes all succeeded (true when not saving)
};

// Runs the receive for `duration`, draining every `drain_period`. The
// profiler must be configured double-buffered and armed; it is left
// disarmed, with the tail of the capture flushed via DrainRemaining. When
// `stream_path` is non-empty the chunks are also appended to a stream file
// there as they drain (hwprof_analyze --follow reads it).
StreamingRunResult RunStreamingNetworkReceive(Testbed& tb, Nanoseconds duration,
                                              std::uint64_t stream_bytes,
                                              Nanoseconds drain_period,
                                              const std::string& stream_path = "");

// --- Fork/exec (Figure 5) -----------------------------------------------------
// A shell-sized process (≈1000 resident pages) loops vfork+execve of a
// cached /bin/test image, printing a line per iteration (console scrolls
// and all).

struct ForkExecResult {
  int iterations_done = 0;
  std::vector<Nanoseconds> cycle_times;  // parent-measured vfork..wait
  Nanoseconds elapsed = 0;
};

ForkExecResult RunForkExec(Testbed& tb, int iterations, Nanoseconds max_time,
                           int shell_resident_pages = 1000,
                           std::size_t image_bytes = 180 * 1024);

// --- Filesystem write storm (§Filesystems) -------------------------------------

struct FsWriteResult {
  std::uint64_t bytes_written = 0;
  Nanoseconds elapsed = 0;
  double cpu_busy_pct = 0.0;  // the paper's "CPU was only busy for 28%"
  std::uint64_t disk_writes = 0;
};

FsWriteResult RunFsWrite(Testbed& tb, std::uint64_t total_bytes, Nanoseconds max_time);

// --- Filesystem random reads (§Filesystems: 18–26 ms per read) -----------------

struct FsReadResult {
  std::vector<Nanoseconds> read_times;  // user-observed, cold cache
  std::uint64_t bytes_read = 0;
  bool data_ok = true;  // read-back matches what was installed
};

FsReadResult RunFsRandomReads(Testbed& tb, int reads, Nanoseconds max_time);

// --- NFS vs FTP-style transfer (§Filesystems) -----------------------------------

struct TransferCompareResult {
  std::uint64_t nfs_bytes = 0;
  Nanoseconds nfs_elapsed = 0;
  double nfs_kb_s = 0.0;
  std::uint64_t tcp_bytes = 0;
  Nanoseconds tcp_elapsed = 0;
  double tcp_kb_s = 0.0;
  bool nfs_data_ok = true;
};

// Runs the NFS read on `tb_nfs` and the TCP receive on `tb_tcp` (two rigs so
// the captures stay separate), transferring `bytes` each way.
TransferCompareResult RunNfsVsFtp(Testbed& tb_nfs, Testbed& tb_tcp, std::uint64_t bytes);

// --- Mixed workload (Table 1) ----------------------------------------------------
// Touches every Table 1 function: vm_fault (page touches), kmem_alloc
// (vfork u-areas), malloc/free (descriptors, sockets), splnet (network),
// spl0, copyinstr (namei).

struct MixedResult {
  Nanoseconds elapsed = 0;
};

MixedResult RunMixed(Testbed& tb, Nanoseconds duration);

// --- Lookup-heavy mix (the kerntune name-cache case study) ---------------------
// Two processes each perform a fixed number of open/read/close cycles over a
// small set of deep paths: nearly every cycle is namei/ufs_lookup walking the
// same directories, the workload an LRU name cache (KernConfig namei_cache)
// is built for. Fixed work, so before/after captures compare fairly.

struct LookupResult {
  std::uint64_t opens_done = 0;
  std::uint64_t open_failures = 0;
  Nanoseconds elapsed = 0;
  Nanoseconds done_at = 0;  // virtual time both workers finished (0 if capped)
};

LookupResult RunLookupMix(Testbed& tb, int opens_per_worker, Nanoseconds max_time);

// Deterministic file contents for integrity checks.
Bytes PatternBytes(std::size_t n, std::uint8_t seed = 0);

}  // namespace hwprof

#endif  // HWPROF_SRC_WORKLOADS_WORKLOADS_H_
