// Per-process report, IP fragmentation round trips, and the 68020 cost
// model's side-by-side properties.

#include <gtest/gtest.h>

#include <memory>

#include "src/analysis/decoder.h"
#include "src/analysis/grouping.h"
#include "src/analysis/process_report.h"
#include "src/kern/net_pkt.h"
#include "src/kern/kmem.h"
#include "src/kern/nfs.h"
#include "src/kern/sched.h"
#include "src/kern/net.h"
#include "src/kern/user_env.h"
#include "src/workloads/testbed.h"
#include "src/workloads/workloads.h"

namespace hwprof {
namespace {

// --- ProcessReport ----------------------------------------------------------------

TEST(ProcessReport, SeparatesTwoComputeProcs) {
  Testbed tb;
  Kernel& k = tb.kernel();
  tb.Arm();
  // Two processes with clearly different kernel footprints. The faulter
  // never sleeps, so its activity block is unambiguously its own (two
  // processes parked in *identical* call chains cannot be told apart from
  // the tag stream — see the ProcessReport caveat).
  k.Spawn("mallocer", [&](UserEnv& env) {
    (void)env;
    for (int i = 0; i < 100; ++i) {
      for (int j = 0; j < 30; ++j) {
        k.kmem().Free(k.kmem().Malloc(64, "a"));
      }
      k.sched().Tsleep(&k, "pace", Msec(10));
    }
  });
  k.Spawn(
      "faulter",
      [&](UserEnv& env) {
        env.TouchPages(600, true);  // 600 demand faults, then exit
      },
      /*resident_pages=*/1);
  k.Run(Sec(2));
  DecodedTrace d = Decoder::Decode(tb.StopAndUpload(), tb.tags());
  ProcessReport report(d);
  ASSERT_GE(report.rows().size(), 2u);
  // One context's top function involves malloc, another's vm_page_alloc.
  bool saw_malloc_ctx = false;
  bool saw_fault_ctx = false;
  for (const ProcessRow& row : report.rows()) {
    saw_malloc_ctx |= row.top_function == "malloc";
    saw_fault_ctx |= row.top_function == "vm_page_alloc" || row.top_function == "vm_fault";
  }
  EXPECT_TRUE(saw_malloc_ctx);
  EXPECT_TRUE(saw_fault_ctx);
  // Busy totals reconcile with the run time (within unattributed slack).
  EXPECT_LE(report.TotalBusy(), d.RunTime());
  EXPECT_GT(report.TotalBusy(), d.RunTime() / 2);
  const std::string text = report.Format(d);
  EXPECT_NE(text.find("top function"), std::string::npos);
}

TEST(ProcessReport, IdleHostedLandsOnTheBlockingContext) {
  Testbed tb;
  Kernel& k = tb.kernel();
  tb.Arm();
  k.Spawn("sleeper", [&](UserEnv& env) {
    (void)env;
    k.sched().Tsleep(&k, "long", Msec(500));
  });
  k.Run(Sec(1));
  DecodedTrace d = Decoder::Decode(tb.StopAndUpload(), tb.tags());
  ProcessReport report(d);
  Nanoseconds hosted = 0;
  for (const ProcessRow& row : report.rows()) {
    hosted += row.idle_hosted;
  }
  EXPECT_EQ(hosted, d.idle_time);
  EXPECT_GT(hosted, Msec(400));
}

// --- IP fragmentation -------------------------------------------------------------

TEST(IpFragments, SmallPayloadIsOnePacket) {
  IpHeader ih;
  ih.proto = kIpProtoUdp;
  ih.src = 1;
  ih.dst = 2;
  const auto packets = BuildIpFragments(ih, Bytes(100, 7));
  ASSERT_EQ(packets.size(), 1u);
  IpHeader parsed;
  Bytes payload;
  ASSERT_TRUE(ParseIpPacket(packets[0], &parsed, &payload));
  EXPECT_FALSE(parsed.more_frags);
  EXPECT_EQ(parsed.frag_off, 0);
}

class IpFragmentSizeTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(IpFragmentSizeTest, FragmentsReassembleExactly) {
  IpHeader ih;
  ih.proto = kIpProtoUdp;
  ih.src = 1;
  ih.dst = 2;
  ih.id = 42;
  Bytes payload(GetParam());
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(i * 13);
  }
  const auto packets = BuildIpFragments(ih, payload);
  // Reassemble by offset.
  Bytes whole;
  bool saw_last = false;
  for (const Bytes& packet : packets) {
    IpHeader parsed;
    Bytes part;
    ASSERT_TRUE(ParseIpPacket(packet, &parsed, &part));
    EXPECT_EQ(parsed.id, 42);
    if (whole.size() < parsed.frag_off + part.size()) {
      whole.resize(parsed.frag_off + part.size());
    }
    std::copy(part.begin(), part.end(), whole.begin() + parsed.frag_off);
    if (!parsed.more_frags) {
      saw_last = true;
    }
    // All but the last fragment carry 8-byte-aligned payloads.
    if (parsed.more_frags) {
      EXPECT_EQ(part.size() % 8, 0u);
    }
    EXPECT_LE(packet.size(), kEtherMaxPayload);
  }
  EXPECT_TRUE(saw_last);
  EXPECT_EQ(whole, payload);
  if (GetParam() + IpHeader::kBytes > kEtherMaxPayload) {
    EXPECT_GT(packets.size(), 1u);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, IpFragmentSizeTest,
                         ::testing::Values(1480u, 1481u, 8192u, 8200u, 20000u));

TEST(IpFragments, KernelReassemblyCountsDatagrams) {
  // An 8 KiB NFS read forces real fragmentation + reassembly in the stack.
  Testbed tb;
  Kernel& k = tb.kernel();
  auto server = std::make_shared<NfsServerHost>(tb.machine(), k.wire());
  const std::uint32_t fh = server->Export("f", PatternBytes(8192));
  Bytes out;
  k.Spawn("c", [&](UserEnv& env) {
    k.nfs().Init();
    env.NfsRead(fh, 0, 8192, &out);
  });
  k.Run(Sec(10));
  EXPECT_EQ(out.size(), 8192u);
  EXPECT_GE(k.net().reassemblies(), 1u);
}

// --- 68020 model ----------------------------------------------------------------------

TEST(CpuModels, M68020HasCheapSynchronisation) {
  const CostModel pc = CostModel::I386Dx40();
  const CostModel emb = CostModel::M68020At25();
  EXPECT_GT(pc.spl_raise_ns, 10 * emb.spl_raise_ns);
  EXPECT_EQ(emb.ast_emulation_ns, 0u);
  EXPECT_GT(pc.ast_emulation_ns, 0u);
}

TEST(CpuModels, SameKernelRunsOnBothModels) {
  auto spl_share = [](const CostModel& model) {
    TestbedConfig config;
    config.cost = model;
    Testbed tb(config);
    tb.Arm();
    RunNetworkReceive(tb, Sec(2), 128 * 1024, false);
    DecodedTrace d = Decoder::Decode(tb.StopAndUpload(), tb.tags());
    Grouping spl(d, Grouping::SplGroup(d));
    const GroupRow* row = spl.Row("spl*");
    return row != nullptr ? row->pct_net : 0.0;
  };
  const double pc = spl_share(CostModel::I386Dx40());
  const double emb = spl_share(CostModel::M68020At25());
  EXPECT_GT(pc, 2 * emb) << "the 386's spl emulation burden should dominate";
}

}  // namespace
}  // namespace hwprof
