// Unit tests for src/base: PRNG, string helpers, units.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "src/base/rng.h"
#include "src/base/strings.h"
#include "src/base/units.h"

namespace hwprof {
namespace {

// --- Rng ------------------------------------------------------------------------

TEST(Rng, DeterministicForSameSeed) {
  Rng a(1234);
  Rng b(1234);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) {
      ++same;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, NextBelowStaysInBounds) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextBelow(bound), bound);
    }
  }
}

TEST(Rng, NextInRangeInclusive) {
  Rng rng(7);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t v = rng.NextInRange(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    saw_lo |= v == 3;
    saw_hi |= v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(99);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  // Mean should be near 0.5.
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng rng(5);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.NextExponential(100.0);
    ASSERT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum / n, 100.0, 5.0);
}

TEST(Rng, BoolProbability) {
  Rng rng(11);
  int heads = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.NextBool(0.25)) {
      ++heads;
    }
  }
  EXPECT_NEAR(heads / 10000.0, 0.25, 0.02);
}

// --- Strings -----------------------------------------------------------------------

TEST(Strings, StrFormatBasics) {
  EXPECT_EQ(StrFormat("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(StrFormat("%s", ""), "");
  EXPECT_EQ(StrFormat("%05u", 7u), "00007");
}

TEST(Strings, SplitKeepsEmptyFields) {
  const auto parts = Split("a//b/", '/');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(Strings, SplitSingleField) {
  const auto parts = Split("abc", '/');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(Strings, SplitLinesDropsTrailingNewline) {
  const auto lines = SplitLines("a\nb\n");
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "a");
  EXPECT_EQ(lines[1], "b");
  EXPECT_TRUE(SplitLines("").empty());
}

TEST(Strings, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  x y \t\n"), "x y");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace("   "), "");
  EXPECT_EQ(StripWhitespace("abc"), "abc");
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(StartsWith("splnet", "spl"));
  EXPECT_FALSE(StartsWith("sp", "spl"));
  EXPECT_TRUE(StartsWith("x", ""));
}

TEST(Strings, ParseUintAccepts) {
  std::uint64_t v = 0;
  EXPECT_TRUE(ParseUint("0", &v));
  EXPECT_EQ(v, 0u);
  EXPECT_TRUE(ParseUint("65535", &v));
  EXPECT_EQ(v, 65535u);
}

TEST(Strings, ParseUintRejects) {
  std::uint64_t v = 0;
  EXPECT_FALSE(ParseUint("", &v));
  EXPECT_FALSE(ParseUint("-1", &v));
  EXPECT_FALSE(ParseUint("12x", &v));
  EXPECT_FALSE(ParseUint(" 1", &v));
  EXPECT_FALSE(ParseUint("99999999999999999999999", &v));
}

// --- Units ---------------------------------------------------------------------------

TEST(Units, Conversions) {
  EXPECT_EQ(Usec(3), 3000u);
  EXPECT_EQ(Msec(2), 2'000'000u);
  EXPECT_EQ(Sec(1), 1'000'000'000u);
  EXPECT_EQ(ToWholeUsec(1999), 1u);
  EXPECT_DOUBLE_EQ(ToMsecF(1'500'000), 1.5);
  EXPECT_DOUBLE_EQ(ToUsecF(1'500), 1.5);
}

}  // namespace
}  // namespace hwprof
