// Baseline profilers: clock sampling and event counters, and their
// comparison against the hardware method.

#include <gtest/gtest.h>

#include "src/analysis/summary.h"
#include "src/baseline/compare.h"
#include "src/baseline/counters.h"
#include "src/baseline/sampling.h"
#include "src/kern/kmem.h"
#include "src/kern/user_env.h"
#include "src/workloads/testbed.h"
#include "src/workloads/workloads.h"

namespace hwprof {
namespace {

TEST(Sampling, CountsTrackACpuHog) {
  Testbed tb;
  Kernel& k = tb.kernel();
  SamplingConfig config;
  config.interval = 10 * kMillisecond;
  SamplingProfiler sampler(k, tb.tags(), config);
  // One function burns most of the CPU.
  k.Spawn("hog", [&](UserEnv& env) {
    for (int i = 0; i < 40; ++i) {
      k.kmem().Free(k.kmem().Malloc(64, "x"));  // brief kernel activity
      env.Compute(Msec(20));
    }
  });
  sampler.Start();
  k.Run(Sec(1));
  sampler.Stop();
  EXPECT_GT(sampler.total_samples(), 50u);
  // Most samples land outside any profiled function (user compute time):
  // "unknown" dominates, just as a kernel-only sampler sees mostly user PCs.
  EXPECT_GT(sampler.EstimatedPercent("unknown"), 50.0);
}

TEST(Sampling, IdleAttributedToSwtch) {
  Testbed tb;
  Kernel& k = tb.kernel();
  SamplingProfiler sampler(k, tb.tags());
  sampler.Start();
  k.Run(Sec(2));  // nothing to do: pure idle
  sampler.Stop();
  EXPECT_GT(sampler.EstimatedPercent("idle"), 90.0);
}

TEST(Sampling, SamplerCostsRealCpuTime) {
  // The Heisenberg effect the paper complains about: sampling itself burns
  // CPU. Compare busy time with and without the sampler on an idle system.
  Nanoseconds busy_with = 0;
  Nanoseconds busy_without = 0;
  {
    Testbed tb;
    tb.kernel().Run(Sec(2));
    busy_without = tb.kernel().cpu().busy_ns();
  }
  {
    Testbed tb;
    SamplingConfig config;
    config.interval = 1 * kMillisecond;  // aggressive
    SamplingProfiler sampler(tb.kernel(), tb.tags(), config);
    sampler.Start();
    tb.kernel().Run(Sec(2));
    sampler.Stop();
    busy_with = tb.kernel().cpu().busy_ns();
  }
  EXPECT_GT(busy_with, busy_without + Msec(10));
}

TEST(Sampling, JitteredClockStillSamples) {
  Testbed tb;
  Kernel& k = tb.kernel();
  SamplingConfig config;
  config.interval = 10 * kMillisecond;
  config.jitter = true;
  SamplingProfiler sampler(k, tb.tags(), config);
  sampler.Start();
  k.Run(Sec(1));
  sampler.Stop();
  EXPECT_GT(sampler.total_samples(), 60u);
  EXPECT_LT(sampler.total_samples(), 140u);
}

TEST(Sampling, CoarseSamplingMissesShortFunctions) {
  // The granularity argument: 10 ms sampling cannot see 10 µs functions
  // that the hardware profiler measures exactly.
  Testbed tb;
  Kernel& k = tb.kernel();
  tb.Arm();
  SamplingProfiler sampler(k, tb.tags());
  sampler.Start();
  NetReceiveResult res = RunNetworkReceive(tb, Sec(3), 128 * 1024, false);
  (void)res;
  sampler.Stop();
  RawTrace raw = tb.StopAndUpload();
  DecodedTrace decoded = Decoder::Decode(raw, tb.tags());
  // The hardware method measured hundreds of splnet calls...
  const FuncStats* splnet = decoded.Stats("splnet");
  ASSERT_NE(splnet, nullptr);
  EXPECT_GT(splnet->calls, 100u);
  // ...while the sampler barely (or never) caught one.
  const double sampled = sampler.EstimatedPercent("splnet");
  EXPECT_LT(sampled, 5.0);
}

TEST(Compare, ReportsErrors) {
  Testbed tb;
  Kernel& k = tb.kernel();
  tb.Arm();
  SamplingProfiler sampler(k, tb.tags());
  sampler.Start();
  RunNetworkReceive(tb, Sec(2), 128 * 1024, false);
  sampler.Stop();
  RawTrace raw = tb.StopAndUpload();
  DecodedTrace decoded = Decoder::Decode(raw, tb.tags());
  Summary summary(decoded);
  ComparisonResult result = CompareProfiles(summary, sampler, 5);
  EXPECT_EQ(result.rows.size(), 5u);
  EXPECT_GE(result.max_abs_error, result.mean_abs_error);
  const std::string text = result.Format();
  EXPECT_NE(text.find("mean |err|"), std::string::npos);
}

TEST(Counters, SnapshotDeltasReflectActivity) {
  Testbed tb;
  Kernel& k = tb.kernel();
  const CounterSnapshot before = CounterSnapshot::Take(k);
  RunNetworkReceive(tb, Sec(2), 64 * 1024, false);
  const CounterSnapshot after = CounterSnapshot::Take(k);
  EXPECT_GT(after.rx_frames, before.rx_frames);
  EXPECT_GT(after.ticks, before.ticks);
  EXPECT_GT(after.context_switches, before.context_switches);
  EXPECT_GT(after.mbuf_allocs, before.mbuf_allocs);
  const std::string text = CounterSnapshot::FormatDelta(before, after);
  EXPECT_NE(text.find("rx/s"), std::string::npos);
  EXPECT_NE(text.find("cswitch/s"), std::string::npos);
}

TEST(Counters, TellNothingAboutWhereTimeGoes) {
  // The paper's core criticism, as an executable statement: counters give
  // rates, never attribution — nothing in the snapshot distinguishes the
  // bcopy-bound receive path from an idle system with the same counts.
  Testbed tb;
  const CounterSnapshot snapshot = CounterSnapshot::Take(tb.kernel());
  const std::string text = CounterSnapshot::FormatDelta(snapshot, snapshot);
  EXPECT_EQ(text.find("bcopy"), std::string::npos);
  EXPECT_EQ(text.find("%"), std::string::npos);
}

}  // namespace
}  // namespace hwprof
