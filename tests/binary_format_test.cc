// The binary capture container, proven by a round-trip/corruption battery:
//
//  * lossless text<->binary round trips (bit-identical both directions) for
//    one-shot captures and chunked streams, across the fault-plan seed set;
//  * decode identity: a binary container fed through the zero-copy SoA
//    reader — serially, as randomly-rechunked streams, and through the
//    parallel engine at --jobs {1,2,8} — fingerprints byte-identical to the
//    text decode of the same events;
//  * a corruption matrix with EXACT typed-anomaly accounting: flipped CRC,
//    destroyed chunk magic, oversized record count, bogus varint
//    continuation, torn tails (mid-header and mid-record), timestamps above
//    the timer mask;
//  * CLI behaviour: auto-detection, --salvage byte-offset diagnostics,
//    strict nonzero exits, --follow over binary streams (including a writer
//    caught mid-record), and hwprof_convert's lossless translation;
//  * regressions for the text stream parser: mid-file salvage resync must
//    not masquerade as a torn tail, and a destroyed chunk header must not
//    bill the intact event lines behind it.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "src/analysis/decoder.h"
#include "src/analysis/parallel.h"
#include "src/base/rng.h"
#include "src/profhw/binary_trace.h"
#include "src/profhw/fault_injection.h"
#include "src/profhw/raw_trace.h"
#include "src/profhw/smart_socket.h"
#include "tests/trace_testutil.h"
#include "tools/analyze_main.h"
#include "tools/convert_main.h"

namespace hwprof {
namespace {

// --- Decode-path helpers (the binary twins of fault_injection_test's) --------

DecodedTrace DecodeBinarySerial(const std::string& bytes, const TagFile& names,
                                bool salvage = false) {
  BinaryChunkReader reader(bytes, salvage);
  HWPROF_CHECK(reader.header_ok());
  StreamingDecoder decoder(names, reader.timer_bits(), reader.timer_clock_hz(),
                           StreamingOptions{.retain_structure = true});
  decoder.NoteDropped(reader.dropped_events());
  decoder.SetClockEnvelope(reader.capture_elapsed_ns());
  SoaChunk chunk;
  while (reader.Next(&chunk)) {
    if (chunk.dropped_before > 0) {
      decoder.NoteDropped(chunk.dropped_before);
    }
    decoder.FeedSoA(chunk.tags.data(), chunk.timestamps.data(),
                    chunk.tags.size());
  }
  decoder.NoteCorruptWords(reader.corrupt_words());
  return decoder.Finish(reader.overflowed());
}

DecodedTrace DecodeBinaryParallel(const std::string& bytes, const TagFile& names,
                                  unsigned jobs, std::size_t shard_target) {
  BinaryChunkReader reader(bytes, /*salvage=*/false);
  HWPROF_CHECK(reader.header_ok());
  ParallelOptions opts;
  opts.jobs = jobs;
  opts.shard_target_ops = shard_target;
  ParallelAnalyzer analyzer(names, reader.timer_bits(), reader.timer_clock_hz(),
                            opts);
  analyzer.NoteDropped(reader.dropped_events());
  analyzer.SetClockEnvelope(reader.capture_elapsed_ns());
  SoaChunk chunk;
  while (reader.Next(&chunk)) {
    if (chunk.dropped_before > 0) {
      analyzer.NoteDropped(chunk.dropped_before);
    }
    analyzer.FeedSoA(chunk.tags.data(), chunk.timestamps.data(),
                     chunk.tags.size());
  }
  analyzer.NoteCorruptWords(reader.corrupt_words());
  return analyzer.Finish(reader.overflowed());
}

// Splits `raw` into a stream of randomly-sized drained banks.
StreamCapture RandomChunking(const RawTrace& raw, std::uint64_t seed) {
  Rng rng(seed);
  StreamCapture stream;
  stream.timer_bits = raw.timer_bits;
  stream.timer_clock_hz = raw.timer_clock_hz;
  std::size_t at = 0;
  while (at < raw.events.size()) {
    const std::size_t n =
        std::min(raw.events.size() - at, std::size_t{1} + rng.NextBelow(97));
    TraceChunk chunk;
    chunk.events.assign(raw.events.begin() + at, raw.events.begin() + at + n);
    stream.chunks.push_back(std::move(chunk));
    at += n;
  }
  return stream;
}

// A small trace whose binary records are exactly 2 bytes each (tags and
// deltas all < 128), so torn-tail tests can pin how many records survive a
// cut at any byte count.
RawTrace TwoByteRecordTrace(std::size_t n) {
  RawTrace raw;
  std::uint32_t now = 0;
  for (std::size_t i = 0; i < n; ++i) {
    now += 3;
    raw.events.push_back(
        {static_cast<std::uint16_t>(i % 2 == 0 ? 100 : 101), now});
  }
  return raw;
}

std::size_t NthChunkOffset(const std::string& bytes, std::size_t n) {
  const char magic[4] = {
      static_cast<char>(kBinaryChunkMagic & 0xFF),
      static_cast<char>((kBinaryChunkMagic >> 8) & 0xFF),
      static_cast<char>((kBinaryChunkMagic >> 16) & 0xFF),
      static_cast<char>((kBinaryChunkMagic >> 24) & 0xFF)};
  std::size_t pos = kBinaryFileHeaderSize;
  for (std::size_t k = 0;; ++k) {
    pos = bytes.find(std::string(magic, 4), pos);
    HWPROF_CHECK(pos != std::string::npos);
    if (k == n) {
      return pos;
    }
    pos += 4;
  }
}

bool HasDiag(const std::vector<TraceDiag>& diags, const std::string& needle) {
  for (const TraceDiag& d : diags) {
    if (d.message.find(needle) != std::string::npos) {
      return true;
    }
  }
  return false;
}

std::string WriteTempFile(const std::string& name, const std::string& bytes) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::ofstream out(path, std::ios::trunc | std::ios::binary);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  HWPROF_CHECK(static_cast<bool>(out));
  return path;
}

std::string ReadWholeFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  HWPROF_CHECK(static_cast<bool>(in));
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  return bytes;
}

int RunAnalyze(std::initializer_list<const char*> args, std::string* error) {
  std::vector<const char*> argv{"hwprof_analyze"};
  argv.insert(argv.end(), args.begin(), args.end());
  return AnalyzeMain(static_cast<int>(argv.size()), argv.data(), error);
}

int RunConvert(std::initializer_list<const char*> args, std::string* error) {
  std::vector<const char*> argv{"hwprof_convert"};
  argv.insert(argv.end(), args.begin(), args.end());
  return ConvertMain(static_cast<int>(argv.size()), argv.data(), error);
}

std::string WriteNamesFile(const std::string& name) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::ofstream out(path);
  out << "a/100\nb/102\nc/104\nd/106\nswtch/200!\nidle_swtch/202!\n"
         "MARK/300=\nPOINT/302=\n";
  return path;
}

// --- Round-trip fuzz ---------------------------------------------------------

class BinaryRoundTripFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BinaryRoundTripFuzzTest, CaptureTextBinaryTextIsBitIdentical) {
  const std::uint64_t seed = GetParam();
  RawTrace raw = FuzzTrace(seed, 500);
  // Vary every header field the container carries.
  if (seed % 4 == 1) {
    raw.dropped_events = 1 + seed % 17;
  }
  if (seed % 3 == 0) {
    raw.capture_elapsed_ns = 40'000'000'000ull;
  }
  const std::string text = raw.Serialize();
  const std::string bin = EncodeCaptureBinary(raw);

  RawTrace back;
  std::vector<TraceDiag> diags;
  ASSERT_TRUE(DecodeCaptureBinary(bin, &back, &diags))
      << "seed " << seed << ": " << (diags.empty() ? "" : diags[0].message);
  EXPECT_TRUE(diags.empty());
  EXPECT_EQ(back.Serialize(), text) << "seed " << seed;
  // And binary -> text -> binary reproduces the container bit-for-bit.
  EXPECT_EQ(EncodeCaptureBinary(back), bin) << "seed " << seed;
}

TEST_P(BinaryRoundTripFuzzTest, StreamTextBinaryTextIsBitIdentical) {
  const std::uint64_t seed = GetParam();
  const RawTrace raw = FuzzTrace(seed + 500, 400);
  StreamCapture stream = RandomChunking(raw, seed);
  // Drop counts on some banks: they must survive both directions.
  for (std::size_t i = 0; i < stream.chunks.size(); ++i) {
    if ((i + seed) % 3 == 0) {
      stream.chunks[i].dropped_before = 1 + (i * seed) % 9;
    }
  }
  const std::string text = SerializeStreamText(stream);
  const std::string bin = EncodeStreamBinary(stream);

  StreamCapture back;
  std::vector<TraceDiag> diags;
  ASSERT_TRUE(DecodeStreamBinary(bin, &back, &diags)) << "seed " << seed;
  EXPECT_FALSE(back.truncated_tail);
  EXPECT_EQ(back.chunks.size(), stream.chunks.size());
  EXPECT_EQ(SerializeStreamText(back), text) << "seed " << seed;
  EXPECT_EQ(EncodeStreamBinary(back), bin) << "seed " << seed;
}

TEST_P(BinaryRoundTripFuzzTest, BinaryDecodeMatchesTextDecodeOnEveryPath) {
  const std::uint64_t seed = GetParam();
  const TagFile& names = MakeNames();
  RawTrace raw = FuzzTrace(seed, 600);
  if (seed % 4 == 1) {
    raw.dropped_events = 1 + seed % 17;
  }
  if (seed % 3 == 0) {
    raw.capture_elapsed_ns = 40'000'000'000ull;
  }
  const std::string bin = EncodeCaptureBinary(raw);
  const std::string serial = Fingerprint(Decoder::Decode(raw, names));

  ASSERT_EQ(Fingerprint(DecodeBinarySerial(bin, names)), serial)
      << "binary serial, seed " << seed;
  for (unsigned jobs : {1u, 2u, 8u}) {
    for (std::size_t target : {std::size_t{1}, std::size_t{64}}) {
      ASSERT_EQ(Fingerprint(DecodeBinaryParallel(bin, names, jobs, target)),
                serial)
          << "binary jobs=" << jobs << " target=" << target << " seed " << seed;
    }
  }

  // Chunked-stream path: the same events as a binary *stream* container with
  // seeded random bank boundaries (the stream header carries no
  // overflow/drop/envelope fields, so compare against a matching capture).
  RawTrace flat = raw;
  flat.overflowed = false;
  flat.dropped_events = 0;
  flat.capture_elapsed_ns = 0;
  const std::string flat_serial = Fingerprint(Decoder::Decode(flat, names));
  for (std::uint64_t chunk_seed : {1u, 77u}) {
    const std::string sbin =
        EncodeStreamBinary(RandomChunking(flat, chunk_seed));
    StreamCapture stream;
    ASSERT_TRUE(DecodeStreamBinary(sbin, &stream, nullptr));
    StreamingDecoder decoder(names, stream.timer_bits, stream.timer_clock_hz,
                             StreamingOptions{.retain_structure = true});
    for (const TraceChunk& chunk : stream.chunks) {
      decoder.FeedChunk(chunk);
    }
    ASSERT_EQ(Fingerprint(decoder.Finish(false)), flat_serial)
        << "binary chunked, chunk_seed=" << chunk_seed << " seed " << seed;
  }
}

TEST_P(BinaryRoundTripFuzzTest, RandomBinaryDamageNeverCrashesAndSalvages) {
  const std::uint64_t seed = GetParam();
  const TagFile& names = MakeNames();
  const RawTrace clean = FuzzTrace(seed + 2000, 300);
  const std::string damaged = CorruptCaptureBinary(EncodeCaptureBinary(clean), seed);

  // Strict: either the damage missed every checked field, or it is reported
  // with byte-offset diagnostics.
  RawTrace strict;
  std::vector<TraceDiag> diags;
  if (!DecodeCaptureBinary(damaged, &strict, &diags)) {
    ASSERT_FALSE(diags.empty()) << "failure without a diagnostic, seed " << seed;
    for (const TraceDiag& d : diags) {
      EXPECT_FALSE(d.message.empty());
    }
  }

  // Salvage: the file header survives CorruptCaptureBinary by construction,
  // so salvage always produces a trace; whatever it recovered must decode
  // identically on every path.
  RawTrace salvaged;
  std::vector<TraceDiag> salvage_diags;
  std::uint64_t corrupt_words = 0;
  ASSERT_TRUE(DecodeCaptureBinarySalvage(damaged, &salvaged, &salvage_diags,
                                         &corrupt_words))
      << "seed " << seed;
  StreamingDecoder decoder(names, salvaged.timer_bits, salvaged.timer_clock_hz,
                           StreamingOptions{.retain_structure = true});
  decoder.NoteCorruptWords(corrupt_words);
  decoder.NoteDropped(salvaged.dropped_events);
  decoder.SetClockEnvelope(salvaged.capture_elapsed_ns);
  decoder.Feed(salvaged.events);
  const std::string serial = Fingerprint(decoder.Finish(salvaged.overflowed));
  ParallelOptions opts;
  opts.jobs = 8;
  opts.shard_target_ops = 64;
  ParallelAnalyzer analyzer(names, salvaged.timer_bits, salvaged.timer_clock_hz,
                            opts);
  analyzer.NoteCorruptWords(corrupt_words);
  analyzer.NoteDropped(salvaged.dropped_events);
  analyzer.SetClockEnvelope(salvaged.capture_elapsed_ns);
  analyzer.Feed(salvaged.events);
  EXPECT_EQ(Fingerprint(analyzer.Finish(salvaged.overflowed)), serial)
      << "salvage parallel, seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, BinaryRoundTripFuzzTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u, 9u,
                                           10u, 11u, 12u, 13u, 14u, 15u, 16u,
                                           17u, 18u, 19u, 20u, 42u, 97u, 1993u,
                                           65537u));

// --- File-level auto-detection ----------------------------------------------

TEST(BinaryFormat, DetectCaptureFileIdentifiesAllFourShapes) {
  const RawTrace raw = TwoByteRecordTrace(4);
  const std::string tc = ::testing::TempDir() + "/det_tc";
  const std::string bc = ::testing::TempDir() + "/det_bc";
  const std::string ts = ::testing::TempDir() + "/det_ts";
  const std::string bs = ::testing::TempDir() + "/det_bs";
  ASSERT_TRUE(SaveCapture(raw, tc, CaptureFormat::kText));
  ASSERT_TRUE(SaveCapture(raw, bc, CaptureFormat::kBinary));
  ASSERT_TRUE(SaveStreamHeader(ts, 24, 1'000'000, CaptureFormat::kText));
  ASSERT_TRUE(SaveStreamHeader(bs, 24, 1'000'000, CaptureFormat::kBinary));

  CaptureFileInfo info;
  ASSERT_TRUE(DetectCaptureFile(tc, &info));
  EXPECT_EQ(info.format, CaptureFormat::kText);
  EXPECT_FALSE(info.is_stream);
  ASSERT_TRUE(DetectCaptureFile(bc, &info));
  EXPECT_EQ(info.format, CaptureFormat::kBinary);
  EXPECT_FALSE(info.is_stream);
  ASSERT_TRUE(DetectCaptureFile(ts, &info));
  EXPECT_EQ(info.format, CaptureFormat::kText);
  EXPECT_TRUE(info.is_stream);
  ASSERT_TRUE(DetectCaptureFile(bs, &info));
  EXPECT_EQ(info.format, CaptureFormat::kBinary);
  EXPECT_TRUE(info.is_stream);

  EXPECT_FALSE(DetectCaptureFile(::testing::TempDir() + "/det_missing", &info));
  const std::string junk = WriteTempFile("det_junk", "not a capture\n");
  EXPECT_FALSE(DetectCaptureFile(junk, &info));
}

TEST(BinaryFormat, SaveAndLoadAutoDetectBothFormats) {
  RawTrace raw = FuzzTrace(7, 300);
  raw.dropped_events = 3;
  for (const CaptureFormat format :
       {CaptureFormat::kText, CaptureFormat::kBinary}) {
    const std::string path =
        ::testing::TempDir() +
        (format == CaptureFormat::kBinary ? "/auto.hwpb" : "/auto.hwprof");
    ASSERT_TRUE(SaveCapture(raw, path, format));
    RawTrace back;
    ASSERT_TRUE(LoadCapture(path, &back));
    EXPECT_EQ(back.events, raw.events);
    EXPECT_EQ(back.dropped_events, raw.dropped_events);
    EXPECT_EQ(back.timer_bits, raw.timer_bits);
    EXPECT_EQ(back.overflowed, raw.overflowed);
  }
}

TEST(BinaryFormat, StreamAppendMatchesTheHeadersFormat) {
  TraceChunk first;
  first.events = {{100, 10}, {101, 20}};
  TraceChunk second;
  second.events = {{102, 30}};
  second.dropped_before = 4;
  for (const CaptureFormat format :
       {CaptureFormat::kText, CaptureFormat::kBinary}) {
    const std::string path =
        ::testing::TempDir() +
        (format == CaptureFormat::kBinary ? "/app.hwpb" : "/app.hwstream");
    ASSERT_TRUE(SaveStreamHeader(path, 24, 1'000'000, format));
    ASSERT_TRUE(AppendStreamChunk(path, first));
    ASSERT_TRUE(AppendStreamChunk(path, second));
    StreamCapture stream;
    ASSERT_TRUE(LoadStream(path, &stream));
    ASSERT_EQ(stream.chunks.size(), 2u);
    EXPECT_EQ(stream.chunks[0].events, first.events);
    EXPECT_EQ(stream.chunks[1].events, second.events);
    EXPECT_EQ(stream.chunks[1].dropped_before, 4u);
    EXPECT_FALSE(stream.truncated_tail);
  }
}

// --- Corruption matrix: exact typed-anomaly accounting -----------------------

// A three-bank stream with known record counts (3, 2, 4) and 2-byte records.
StreamCapture MatrixStream() {
  StreamCapture stream;
  std::uint32_t now = 0;
  const std::size_t counts[3] = {3, 2, 4};
  for (std::size_t c = 0; c < 3; ++c) {
    TraceChunk chunk;
    for (std::size_t i = 0; i < counts[c]; ++i) {
      now += 5;
      chunk.events.push_back(
          {static_cast<std::uint16_t>(i % 2 == 0 ? 100 : 101), now});
    }
    if (c == 1) {
      chunk.dropped_before = 6;
    }
    stream.chunks.push_back(std::move(chunk));
  }
  return stream;
}

TEST(BinaryCorruptionMatrix, FlippedCrcLosesExactlyThatChunk) {
  const std::string bin = EncodeStreamBinary(MatrixStream());
  const std::string damaged = FlipChunkCrcByte(bin, 1);
  ASSERT_NE(damaged, bin);

  StreamCapture strict;
  std::vector<TraceDiag> diags;
  EXPECT_FALSE(DecodeStreamBinary(damaged, &strict, &diags));
  EXPECT_TRUE(HasDiag(diags, "CRC mismatch"));

  StreamCapture salvaged;
  diags.clear();
  std::uint64_t corrupt = 0;
  ASSERT_TRUE(DecodeStreamBinarySalvage(damaged, &salvaged, &diags, &corrupt));
  EXPECT_EQ(corrupt, 2u);  // bank 1 held exactly 2 records
  ASSERT_EQ(salvaged.chunks.size(), 2u);
  EXPECT_EQ(salvaged.chunks[0].events.size(), 3u);
  EXPECT_EQ(salvaged.chunks[1].events.size(), 4u);
  EXPECT_FALSE(salvaged.truncated_tail);
  EXPECT_TRUE(HasDiag(diags, "CRC mismatch"));
  EXPECT_TRUE(HasDiag(diags, "resynchronised"));
}

TEST(BinaryCorruptionMatrix, OversizedRecordCountIsOneCorruptWordThenResync) {
  const std::string bin = EncodeStreamBinary(MatrixStream());
  const std::string damaged = OversizeRecordCount(bin, 0);
  ASSERT_NE(damaged, bin);

  StreamCapture strict;
  std::vector<TraceDiag> diags;
  EXPECT_FALSE(DecodeStreamBinary(damaged, &strict, &diags));
  EXPECT_TRUE(HasDiag(diags, "impossible record count"));

  StreamCapture salvaged;
  diags.clear();
  std::uint64_t corrupt = 0;
  ASSERT_TRUE(DecodeStreamBinarySalvage(damaged, &salvaged, &diags, &corrupt));
  EXPECT_EQ(corrupt, 1u);  // the damaged header, not the unverifiable payload
  ASSERT_EQ(salvaged.chunks.size(), 2u);
  EXPECT_EQ(salvaged.chunks[0].events.size(), 2u);
  EXPECT_EQ(salvaged.chunks[0].dropped_before, 6u);
  EXPECT_EQ(salvaged.chunks[1].events.size(), 4u);
  EXPECT_TRUE(HasDiag(diags, "resynchronised"));
}

TEST(BinaryCorruptionMatrix, BogusVarintLosesTheRecordsButNeedsNoRescan) {
  const std::string bin = EncodeStreamBinary(MatrixStream());
  const std::string damaged = BreakVarintInChunk(bin, 2);
  ASSERT_NE(damaged, bin);

  StreamCapture strict;
  std::vector<TraceDiag> diags;
  EXPECT_FALSE(DecodeStreamBinary(damaged, &strict, &diags));
  EXPECT_TRUE(HasDiag(diags, "damaged record encoding"));

  StreamCapture salvaged;
  diags.clear();
  std::uint64_t corrupt = 0;
  ASSERT_TRUE(DecodeStreamBinarySalvage(damaged, &salvaged, &diags, &corrupt));
  EXPECT_EQ(corrupt, 4u);  // all of bank 2's records
  ASSERT_EQ(salvaged.chunks.size(), 3u);
  EXPECT_EQ(salvaged.chunks[2].events.size(), 0u);
  // The payload length was trusted (its CRC passed), so decoding continued
  // at the payload end without scanning.
  EXPECT_FALSE(HasDiag(diags, "resynchronised"));
}

TEST(BinaryCorruptionMatrix, DestroyedChunkMagicIsOneCorruptWordThenResync) {
  const std::string bin = EncodeStreamBinary(MatrixStream());
  std::string damaged = bin;
  const std::size_t off = NthChunkOffset(bin, 1);
  damaged[off] = static_cast<char>(damaged[off] ^ 0x55);

  StreamCapture salvaged;
  std::vector<TraceDiag> diags;
  std::uint64_t corrupt = 0;
  ASSERT_TRUE(DecodeStreamBinarySalvage(damaged, &salvaged, &diags, &corrupt));
  EXPECT_EQ(corrupt, 1u);
  ASSERT_EQ(salvaged.chunks.size(), 2u);
  EXPECT_EQ(salvaged.chunks[0].events.size(), 3u);
  EXPECT_EQ(salvaged.chunks[1].events.size(), 4u);
  EXPECT_TRUE(HasDiag(diags, "expected a chunk header"));
  EXPECT_TRUE(HasDiag(diags, "resynchronised"));
}

TEST(BinaryCorruptionMatrix, TornTailMidHeaderAndMidRecord) {
  const std::string bin = EncodeStreamBinary(MatrixStream());
  const std::size_t last = NthChunkOffset(bin, 2);

  // Torn mid-header: the final bank vanishes; everything before it stands.
  {
    StreamCapture stream;
    std::vector<TraceDiag> diags;
    ASSERT_TRUE(
        DecodeStreamBinary(bin.substr(0, last + 7), &stream, &diags));
    EXPECT_TRUE(stream.truncated_tail);
    ASSERT_EQ(stream.chunks.size(), 2u);
  }
  // Torn mid-record (2-byte records; an odd payload byte count cuts one in
  // half): complete records of the final bank survive, tail flagged, in
  // strict AND salvage modes — the writer may simply still be appending.
  {
    const std::string torn = TruncateChunkPayload(bin, 2, 5);
    StreamCapture stream;
    ASSERT_TRUE(DecodeStreamBinary(torn, &stream, nullptr));
    EXPECT_TRUE(stream.truncated_tail);
    ASSERT_EQ(stream.chunks.size(), 3u);
    EXPECT_EQ(stream.chunks[2].events.size(), 2u);  // 5 bytes = 2.5 records

    StreamCapture salvage_stream;
    std::uint64_t corrupt = 0;
    ASSERT_TRUE(DecodeStreamBinarySalvage(torn, &salvage_stream, nullptr,
                                          &corrupt));
    EXPECT_TRUE(salvage_stream.truncated_tail);
    EXPECT_EQ(corrupt, 0u);
  }
}

TEST(BinaryCorruptionMatrix, CaptureTornTailIsStrictFailureSalvageCountsIt) {
  const RawTrace raw = TwoByteRecordTrace(10);
  const std::string bin = EncodeCaptureBinary(raw);
  const std::string torn = TruncateChunkPayload(bin, 0, 7);  // 3.5 records

  RawTrace strict;
  std::vector<TraceDiag> diags;
  EXPECT_FALSE(DecodeCaptureBinary(torn, &strict, &diags));
  EXPECT_TRUE(HasDiag(diags, "torn chunk payload"));

  RawTrace salvaged;
  diags.clear();
  std::uint64_t corrupt = 0;
  ASSERT_TRUE(DecodeCaptureBinarySalvage(torn, &salvaged, &diags, &corrupt));
  EXPECT_EQ(salvaged.events.size(), 3u);
  EXPECT_EQ(corrupt, 7u);  // 10 promised, 3 decoded
}

TEST(BinaryCorruptionMatrix, TimestampAboveTheTimerMaskIsACorruptWord) {
  RawTrace raw = TwoByteRecordTrace(4);
  raw.events[2].timestamp = (1u << 24) + 9;  // above the 24-bit mask
  const std::string bin = EncodeCaptureBinary(raw);

  RawTrace strict;
  std::vector<TraceDiag> diags;
  EXPECT_FALSE(DecodeCaptureBinary(bin, &strict, &diags));
  EXPECT_TRUE(HasDiag(diags, "exceeds the 24-bit timer mask"));

  RawTrace salvaged;
  std::uint64_t corrupt = 0;
  ASSERT_TRUE(DecodeCaptureBinarySalvage(bin, &salvaged, nullptr, &corrupt));
  EXPECT_EQ(corrupt, 1u);
  ASSERT_EQ(salvaged.events.size(), 3u);  // the impossible record is dropped
  EXPECT_EQ(salvaged.events[2], raw.events[3]);
}

// --- CLI: diagnostics, exits, --follow, convert ------------------------------

TEST(BinaryCli, StrictLoadFailsWithByteOffsetDiagnostics) {
  const RawTrace raw = TwoByteRecordTrace(6);
  const std::string damaged = FlipChunkCrcByte(EncodeCaptureBinary(raw), 0);
  const std::string capture = WriteTempFile("bincli_bad.hwpb", damaged);
  const std::string names = WriteNamesFile("bincli_bad.names");

  std::string error;
  EXPECT_NE(RunAnalyze({capture.c_str(), names.c_str(), "--summary", "5"},
                       &error),
            0);
  EXPECT_NE(error.find("cannot load capture"), std::string::npos) << error;
  // The CRC field of the first chunk sits at byte 40 + 20.
  EXPECT_NE(error.find(":60:"), std::string::npos) << error;
  EXPECT_NE(error.find("CRC mismatch"), std::string::npos) << error;
}

TEST(BinaryCli, SalvageDecodesAndReportsTheDamage) {
  const RawTrace raw = TwoByteRecordTrace(6);
  const std::string damaged = FlipChunkCrcByte(EncodeCaptureBinary(raw), 0);
  const std::string capture = WriteTempFile("bincli_salvage.hwpb", damaged);
  const std::string names = WriteNamesFile("bincli_salvage.names");

  std::string error;
  ::testing::internal::CaptureStdout();
  const int rc = RunAnalyze(
      {capture.c_str(), names.c_str(), "--salvage", "--summary", "5"}, &error);
  const std::string out = ::testing::internal::GetCapturedStdout();
  EXPECT_EQ(rc, 0) << error;
  EXPECT_NE(out.find("(salvaged)"), std::string::npos) << out;
  EXPECT_NE(out.find("corrupt words"), std::string::npos) << out;
}

TEST(BinaryCli, JsonIsByteIdenticalAcrossFormatsAndJobCounts) {
  Rng rng(11);
  RawTrace raw = FuzzTrace(11, 800);
  const std::string text_path =
      WriteTempFile("bincli_json.hwprof", raw.Serialize());
  const std::string bin_path =
      WriteTempFile("bincli_json.hwpb", EncodeCaptureBinary(raw));
  const std::string names = WriteNamesFile("bincli_json.names");

  auto json = [&](const std::string& capture, const char* jobs) {
    std::string error;
    ::testing::internal::CaptureStdout();
    const int rc = RunAnalyze(
        {capture.c_str(), names.c_str(), "--json", "--jobs", jobs}, &error);
    std::string out = ::testing::internal::GetCapturedStdout();
    EXPECT_EQ(rc, 0) << error;
    return out;
  };
  const std::string reference = json(text_path, "1");
  EXPECT_EQ(json(bin_path, "1"), reference);
  EXPECT_EQ(json(bin_path, "8"), reference);
}

TEST(BinaryCli, FollowReadsABinaryStreamAndToleratesAMidRecordTear) {
  const std::string stream = ::testing::TempDir() + "/bincli_follow.hwpb";
  const std::string names = WriteNamesFile("bincli_follow.names");
  ASSERT_TRUE(SaveStreamHeader(stream, 24, 1'000'000, CaptureFormat::kBinary));
  TraceChunk first;
  first.events = {{100, 10}, {102, 20}, {103, 60}, {101, 90}};
  ASSERT_TRUE(AppendStreamChunk(stream, first));

  std::string error;
  ::testing::internal::CaptureStdout();
  int rc = RunAnalyze({stream.c_str(), names.c_str(), "--follow", "--summary",
                       "5"},
                      &error);
  std::string out = ::testing::internal::GetCapturedStdout();
  EXPECT_EQ(rc, 0) << error;
  EXPECT_NE(out.find("end of stream: 1 chunks"), std::string::npos) << out;

  // A writer dies mid-record: append only part of the next bank's bytes.
  TraceChunk second;
  second.events = {{100, 120}, {101, 150}, {100, 180}};
  const std::string block = EncodeStreamChunkBinary(second);
  {
    std::ofstream app(stream, std::ios::app | std::ios::binary);
    // Chunk header (24) plus 3 payload bytes: one complete 2-byte record
    // and half of the next.
    app.write(block.data(), 24 + 3);
  }
  error.clear();
  ::testing::internal::CaptureStdout();
  rc = RunAnalyze({stream.c_str(), names.c_str(), "--follow", "--summary", "5"},
                  &error);
  out = ::testing::internal::GetCapturedStdout();
  EXPECT_EQ(rc, 0) << error;
  EXPECT_NE(out.find("(truncated tail)"), std::string::npos) << out;
}

TEST(BinaryCli, FollowReportsBinaryCorruptionUnlessSalvaging) {
  const std::string stream = ::testing::TempDir() + "/bincli_fcorrupt.hwpb";
  const std::string names = WriteNamesFile("bincli_fcorrupt.names");
  ASSERT_TRUE(SaveStreamHeader(stream, 24, 1'000'000, CaptureFormat::kBinary));
  TraceChunk first;
  first.events = {{100, 10}, {101, 50}};
  TraceChunk second;
  second.events = {{100, 80}, {101, 110}};
  ASSERT_TRUE(AppendStreamChunk(stream, first));
  ASSERT_TRUE(AppendStreamChunk(stream, second));
  const std::string damaged = FlipChunkCrcByte(ReadWholeFile(stream), 0);
  std::ofstream(stream, std::ios::trunc | std::ios::binary)
      .write(damaged.data(), static_cast<std::streamsize>(damaged.size()));

  std::string error;
  EXPECT_NE(RunAnalyze({stream.c_str(), names.c_str(), "--follow"}, &error), 0);
  EXPECT_NE(error.find("cannot load stream"), std::string::npos) << error;

  error.clear();
  ::testing::internal::CaptureStdout();
  const int rc = RunAnalyze({stream.c_str(), names.c_str(), "--follow",
                             "--salvage", "--summary", "5"},
                            &error);
  const std::string out = ::testing::internal::GetCapturedStdout();
  EXPECT_EQ(rc, 0) << error;
  EXPECT_NE(out.find("corrupt words"), std::string::npos) << out;
}

TEST(ConvertCli, TranslatesLosslesslyInBothDirections) {
  RawTrace raw = FuzzTrace(13, 400);
  raw.dropped_events = 5;
  const std::string text_path =
      WriteTempFile("conv_in.hwprof", raw.Serialize());
  const std::string bin_path = ::testing::TempDir() + "/conv_out.hwpb";
  const std::string back_path = ::testing::TempDir() + "/conv_back.hwprof";

  std::string error;
  ::testing::internal::CaptureStdout();
  ASSERT_EQ(RunConvert({text_path.c_str(), bin_path.c_str()}, &error), 0)
      << error;
  const std::string summary = ::testing::internal::GetCapturedStdout();
  EXPECT_NE(summary.find("text capture -> binary"), std::string::npos);
  EXPECT_EQ(ReadWholeFile(bin_path), EncodeCaptureBinary(raw));

  ::testing::internal::CaptureStdout();
  ASSERT_EQ(RunConvert({bin_path.c_str(), back_path.c_str()}, &error), 0)
      << error;
  ::testing::internal::GetCapturedStdout();
  EXPECT_EQ(ReadWholeFile(back_path), raw.Serialize());

  // --to the same format is an idempotent (canonicalising) copy.
  const std::string same_path = ::testing::TempDir() + "/conv_same.hwprof";
  ::testing::internal::CaptureStdout();
  ASSERT_EQ(RunConvert({text_path.c_str(), same_path.c_str(), "--to", "text"},
                       &error),
            0)
      << error;
  ::testing::internal::GetCapturedStdout();
  EXPECT_EQ(ReadWholeFile(same_path), raw.Serialize());
}

TEST(ConvertCli, RefusesJunkAndTornStreams) {
  std::string error;
  const std::string junk = WriteTempFile("conv_junk", "what even is this\n");
  EXPECT_NE(RunConvert({junk.c_str(), "/tmp/never"}, &error), 0);
  EXPECT_NE(error.find("cannot identify"), std::string::npos) << error;

  // A torn stream must not be silently "converted" into a clean one.
  const std::string torn = WriteTempFile(
      "conv_torn.hwstream", "hwprof-stream v1 24 1000000\nchunk 2 0\n100 10\n10");
  error.clear();
  EXPECT_NE(RunConvert({torn.c_str(), "/tmp/never"}, &error), 0);
  EXPECT_NE(error.find("torn tail"), std::string::npos) << error;
}

// --- Text stream parser regressions (the latent LoadStreamSalvage issues) ---

TEST(TextStreamSalvage, MidFileResyncIsNotATornTail) {
  // Bank 0 promises three events but its third line is destroyed; the next
  // bank follows immediately. Salvage must resynchronise at that boundary,
  // bill exactly one corrupt word, and NOT claim the writer was still
  // appending (the old parser set truncated_tail on every short chunk).
  const std::string path = WriteTempFile(
      "resync.hwstream",
      "hwprof-stream v1 24 1000000\n"
      "chunk 3 0\n100 10\n101 20\nzap!\n"
      "chunk 2 0\n100 50\n101 60\n");
  StreamCapture stream;
  std::vector<TraceDiag> diags;
  std::uint64_t corrupt = 0;
  ASSERT_TRUE(LoadStreamSalvage(path, &stream, &diags, &corrupt));
  EXPECT_FALSE(stream.truncated_tail);
  EXPECT_EQ(corrupt, 1u);
  ASSERT_EQ(stream.chunks.size(), 2u);
  EXPECT_EQ(stream.chunks[0].events.size(), 2u);
  EXPECT_EQ(stream.chunks[1].events.size(), 2u);
}

TEST(TextStreamSalvage, DestroyedChunkHeaderDoesNotBillTheOrphanedEvents) {
  // The second bank's header line is destroyed but its three event lines are
  // intact. Salvage must recover them as a chunk and charge ONE corrupt word
  // (the header), not four — the old parser billed every orphaned line.
  const std::string path = WriteTempFile(
      "orphans.hwstream",
      "hwprof-stream v1 24 1000000\n"
      "chunk 2 0\n100 10\n101 20\n"
      "chXnk ? 0\n100 30\n101 40\n100 50\n"
      "chunk 1 0\n101 80\n");
  StreamCapture stream;
  std::vector<TraceDiag> diags;
  std::uint64_t corrupt = 0;
  ASSERT_TRUE(LoadStreamSalvage(path, &stream, &diags, &corrupt));
  EXPECT_EQ(corrupt, 1u);
  EXPECT_FALSE(stream.truncated_tail);
  ASSERT_EQ(stream.chunks.size(), 3u);
  EXPECT_EQ(stream.chunks[0].events.size(), 2u);
  EXPECT_EQ(stream.chunks[1].events.size(), 3u);  // the recovered orphans
  EXPECT_EQ(stream.chunks[1].dropped_before, 0u);  // the boundary count is gone
  EXPECT_EQ(stream.chunks[2].events.size(), 1u);
  EXPECT_TRUE(HasDiag(diags, "recovered 3 orphaned event lines"));

  // Strict mode still refuses the same file with a line diagnostic.
  StreamCapture strict;
  diags.clear();
  EXPECT_FALSE(LoadStream(path, &strict, &diags));
  ASSERT_FALSE(diags.empty());
  EXPECT_EQ(diags[0].line, 5);
}

TEST(TextStreamSalvage, CorruptionSpanningAChunkBoundaryCountsOnce) {
  // The last event line of bank 0 AND the following chunk header are both
  // mangled: exactly two unreadable lines, so exactly two corrupt words —
  // resync must not double-bill the boundary, and the trailing bank parses.
  const std::string path = WriteTempFile(
      "boundary.hwstream",
      "hwprof-stream v1 24 1000000\n"
      "chunk 2 0\n100 10\nga rb age\n"
      "not a header either\n"
      "chunk 1 0\n101 50\n");
  StreamCapture stream;
  std::vector<TraceDiag> diags;
  std::uint64_t corrupt = 0;
  ASSERT_TRUE(LoadStreamSalvage(path, &stream, &diags, &corrupt));
  EXPECT_EQ(corrupt, 2u);
  EXPECT_FALSE(stream.truncated_tail);
  ASSERT_EQ(stream.chunks.size(), 2u);
  EXPECT_EQ(stream.chunks[0].events.size(), 1u);
  EXPECT_EQ(stream.chunks[1].events.size(), 1u);
}

}  // namespace
}  // namespace hwprof
