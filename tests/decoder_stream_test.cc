// StreamingDecoder hardening: for ANY way of slicing a raw event sequence
// into chunks — including empty, single-event, truncated and corrupted
// chunks — the incremental decode must be byte-identical to the one-shot
// decode of the concatenation. Exercised on hand-built reference traces
// (exhaustively over split points) and on randomly generated adversarial
// traces (fuzzed chunkings).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/analysis/decoder.h"
#include "src/analysis/summary.h"
#include "src/base/rng.h"
#include "src/instr/tag_file.h"
#include "src/profhw/raw_trace.h"
#include "src/profhw/usec_timer.h"

namespace hwprof {
namespace {

const TagFile& MakeNames() {
  static const TagFile* names = [] {
    auto* file = new TagFile();
    HWPROF_CHECK(TagFile::Parse(
        "a/100\n"
        "b/102\n"
        "c/104\n"
        "swtch/200!\n"
        "MARK/300=\n",
        file));
    return file;
  }();
  return *names;
}

RawTrace Trace(std::initializer_list<RawEvent> events) {
  RawTrace raw;
  raw.events = events;
  return raw;
}

// Everything a summary consumer could observe, in one comparable string.
std::string Fingerprint(const DecodedTrace& d) {
  std::string out = Summary(d).Format(0);
  out += "|events=" + std::to_string(d.event_count);
  out += "|unknown=" + std::to_string(d.unknown_tags);
  out += "|orphan=" + std::to_string(d.orphan_exits);
  out += "|unclosed=" + std::to_string(d.unclosed_entries);
  out += "|start=" + std::to_string(d.start_time);
  out += "|end=" + std::to_string(d.end_time);
  out += "|idle=" + std::to_string(d.idle_time);
  out += "|stacks=" + std::to_string(d.stacks.size());
  return out;
}

// Decodes `raw` through a StreamingDecoder, splitting at the given chunk
// boundaries (indices into raw.events, strictly increasing).
DecodedTrace DecodeChunked(const RawTrace& raw, const TagFile& names,
                           const std::vector<std::size_t>& cuts, bool retain) {
  StreamingOptions opts;
  opts.retain_structure = retain;
  StreamingDecoder dec(names, raw.timer_bits, raw.timer_clock_hz, opts);
  std::size_t prev = 0;
  for (std::size_t cut : cuts) {
    dec.Feed(raw.events.data() + prev, cut - prev);
    prev = cut;
  }
  dec.Feed(raw.events.data() + prev, raw.events.size() - prev);
  return dec.Finish(raw.overflowed);
}

// The context-switch reference traces from decoder_test — the cases where
// cross-chunk state (suspended stacks, one-event lookahead) actually bites.
std::vector<RawTrace> ReferenceTraces() {
  std::vector<RawTrace> traces;
  traces.push_back(Trace({{100, 10}, {101, 60}}));
  traces.push_back(Trace({{100, 0}, {300, 40}, {101, 100}}));
  traces.push_back(Trace({{100, 0}, {200, 20}, {201, 100}, {102, 110}, {103, 150},
                          {200, 160}, {201, 220}, {101, 230}}));
  traces.push_back(Trace({{100, 0}, {200, 10}, {102, 30}, {103, 60}, {201, 100},
                          {101, 120}}));
  traces.push_back(Trace({{100, 0}, {102, 10}, {200, 20}, {201, 30}, {104, 40},
                          {105, 1030}, {200, 1040}, {201, 1100}, {103, 1110},
                          {101, 1120}}));
  // Anomalies: orphan exit, unknown tag, truncation mid-call.
  traces.push_back(Trace({{103, 10}}));
  traces.push_back(Trace({{100, 0}, {999, 10}, {101, 20}}));
  RawTrace truncated = Trace({{100, 0}, {102, 10}});
  truncated.overflowed = true;
  traces.push_back(truncated);
  return traces;
}

TEST(StreamingDecoder, EverySplitOfEveryReferenceTraceMatchesBatch) {
  const TagFile& names = MakeNames();
  for (const RawTrace& raw : ReferenceTraces()) {
    const std::string batch = Fingerprint(Decoder::Decode(raw, names));
    // Every single two-chunk split.
    for (std::size_t cut = 0; cut <= raw.events.size(); ++cut) {
      const DecodedTrace d = DecodeChunked(raw, names, {cut}, /*retain=*/false);
      EXPECT_EQ(Fingerprint(d), batch) << "split at " << cut;
    }
    // One event per chunk.
    std::vector<std::size_t> singles;
    for (std::size_t i = 1; i < raw.events.size(); ++i) {
      singles.push_back(i);
    }
    EXPECT_EQ(Fingerprint(DecodeChunked(raw, names, singles, /*retain=*/false)), batch);
  }
}

TEST(StreamingDecoder, RetainedStructureMatchesBatchExactly) {
  const TagFile& names = MakeNames();
  for (const RawTrace& raw : ReferenceTraces()) {
    const DecodedTrace batch = Decoder::Decode(raw, names);
    for (std::size_t cut = 0; cut <= raw.events.size(); ++cut) {
      const DecodedTrace d = DecodeChunked(raw, names, {cut}, /*retain=*/true);
      ASSERT_EQ(d.steps.size(), batch.steps.size()) << "split at " << cut;
      for (std::size_t i = 0; i < d.steps.size(); ++i) {
        EXPECT_EQ(d.steps[i].t, batch.steps[i].t);
        EXPECT_EQ(d.steps[i].is_exit, batch.steps[i].is_exit);
        EXPECT_EQ(d.steps[i].depth, batch.steps[i].depth);
        EXPECT_EQ(d.steps[i].stack_id, batch.steps[i].stack_id);
        EXPECT_EQ(d.steps[i].context_switch_in, batch.steps[i].context_switch_in);
      }
      EXPECT_EQ(Fingerprint(d), Fingerprint(batch));
    }
  }
}

// Generates an adversarial random trace: mostly balanced nesting with
// context switches, inline markers, unknown tags, spurious exits and
// occasional near-wrap gaps.
RawTrace FuzzTrace(std::uint64_t seed, int length) {
  Rng rng(seed);
  RawTrace raw;
  std::uint32_t now = 0;
  std::vector<std::uint16_t> stack;  // open entry tags
  for (int i = 0; i < length; ++i) {
    // Mostly small gaps; occasionally a leap close to the 16.7 s wrap.
    now += rng.NextBool(0.02)
               ? (1u << 24) - 5 + static_cast<std::uint32_t>(rng.NextBelow(10))
               : static_cast<std::uint32_t>(1 + rng.NextBelow(200));
    const double roll = static_cast<double>(rng.NextBelow(1000)) / 1000.0;
    if (roll < 0.04) {
      raw.events.push_back({300, now});  // inline marker
    } else if (roll < 0.07) {
      raw.events.push_back({999, now});  // unknown tag
    } else if (roll < 0.10) {
      // Spurious exit for a function that may not be open.
      raw.events.push_back({static_cast<std::uint16_t>(101 + 2 * rng.NextBelow(3)), now});
    } else if (roll < 0.18) {
      // Context switch entry/exit pair with a gap.
      raw.events.push_back({200, now});
      now += static_cast<std::uint32_t>(1 + rng.NextBelow(500));
      raw.events.push_back({201, now});
    } else if (stack.size() < 8 && (stack.empty() || rng.NextBool(0.55))) {
      const auto tag = static_cast<std::uint16_t>(100 + 2 * rng.NextBelow(3));
      stack.push_back(tag);
      raw.events.push_back({tag, now});
    } else {
      const std::uint16_t tag = stack.back();
      stack.pop_back();
      raw.events.push_back({static_cast<std::uint16_t>(tag + 1), now});
    }
  }
  for (auto& e : raw.events) {
    e.timestamp &= (1u << 24) - 1;
  }
  return raw;
}

class StreamFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StreamFuzzTest, RandomChunkingsMatchBatch) {
  const TagFile& names = MakeNames();
  Rng rng(GetParam() * 7919 + 1);
  const RawTrace raw = FuzzTrace(GetParam(), 600);
  const std::string batch = Fingerprint(Decoder::Decode(raw, names));
  for (int round = 0; round < 6; ++round) {
    // Random strictly-increasing cut points; duplicates collapse to empty
    // chunks via the k==prev guard below being absent on purpose — Feed(_, 0)
    // must be harmless.
    std::vector<std::size_t> cuts;
    std::size_t at = 0;
    while (at < raw.events.size()) {
      at += rng.NextBelow(raw.events.size() / 4 + 2);
      if (at < raw.events.size()) {
        cuts.push_back(at);
        if (rng.NextBool(0.1)) {
          cuts.push_back(at);  // deliberate empty chunk
        }
      }
    }
    EXPECT_EQ(Fingerprint(DecodeChunked(raw, names, cuts, /*retain=*/false)), batch)
        << "seed=" << GetParam() << " round=" << round;
  }
}

TEST_P(StreamFuzzTest, SingleEventChunksMatchBatch) {
  const TagFile& names = MakeNames();
  const RawTrace raw = FuzzTrace(GetParam() + 1000, 300);
  const std::string batch = Fingerprint(Decoder::Decode(raw, names));
  StreamingDecoder dec(names);
  for (const RawEvent& e : raw.events) {
    dec.Feed(&e, 1);
  }
  EXPECT_EQ(Fingerprint(dec.Finish(raw.overflowed)), batch);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StreamFuzzTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 42u, 1993u, 4096u));

TEST(StreamingDecoder, TruncatedStreamDecodesThePrefix) {
  const TagFile& names = MakeNames();
  const RawTrace full = FuzzTrace(77, 400);
  // Cut mid-trace (mid-call with high probability): the stream ends there.
  RawTrace prefix;
  prefix.events.assign(full.events.begin(), full.events.begin() + 123);
  prefix.overflowed = true;
  const std::string batch = Fingerprint(Decoder::Decode(prefix, names));

  StreamingDecoder dec(names);
  dec.Feed(prefix.events);
  const DecodedTrace d = dec.Finish(/*truncated=*/true);
  EXPECT_TRUE(d.truncated);
  EXPECT_EQ(Fingerprint(d), batch);
}

TEST(StreamingDecoder, GarbageChunksAreToleratedIdentically) {
  const TagFile& names = MakeNames();
  Rng rng(12345);
  RawTrace raw;
  std::uint32_t now = 0;
  // Pure noise: random tags (mostly unknown), non-monotonic-looking stamps.
  for (int i = 0; i < 500; ++i) {
    now += static_cast<std::uint32_t>(rng.NextBelow(1u << 20));
    raw.events.push_back({static_cast<std::uint16_t>(rng.NextBelow(1024)),
                          now & ((1u << 24) - 1)});
  }
  const std::string batch = Fingerprint(Decoder::Decode(raw, names));
  EXPECT_EQ(Fingerprint(DecodeChunked(raw, names, {7, 7, 100, 499}, false)), batch);
}

TEST(StreamingDecoder, EmptyStreamIsHarmless) {
  const TagFile& names = MakeNames();
  StreamingDecoder dec(names);
  dec.Feed(nullptr, 0);
  dec.FeedChunk(TraceChunk{});
  const DecodedTrace d = dec.Finish();
  EXPECT_EQ(d.event_count, 0u);
  EXPECT_EQ(d.ElapsedTotal(), 0u);
  EXPECT_TRUE(d.per_function.empty());
}

TEST(StreamingDecoder, DropAccountingCountsGapsOnce) {
  const TagFile& names = MakeNames();
  StreamingDecoder dec(names);
  TraceChunk c1;
  c1.events = {{100, 10}, {101, 60}};
  TraceChunk c2;
  c2.events = {{100, 70}, {101, 90}};
  c2.dropped_before = 5;
  TraceChunk c3;          // an event-free trailing chunk: drops after the
  c3.dropped_before = 2;  // last stored event
  dec.FeedChunk(c1);
  EXPECT_EQ(dec.dropped_events(), 0u);
  dec.FeedChunk(c2);
  dec.FeedChunk(c3);
  EXPECT_EQ(dec.dropped_events(), 7u);
  const DecodedTrace d = dec.Finish();
  EXPECT_EQ(d.dropped_events, 7u);
  EXPECT_EQ(d.capture_gaps, 2u);
  EXPECT_EQ(d.event_count, 4u);
  EXPECT_EQ(d.Stats("a")->calls, 2u);
}

TEST(StreamingDecoder, ContextSwitchExitStallsUntilLookaheadArrives) {
  const TagFile& names = MakeNames();
  StreamingDecoder dec(names);
  const RawEvent head[] = {{100, 0}, {200, 20}, {201, 100}};
  dec.Feed(head, 3);
  // The swtch exit cannot be resolved yet: the suspended stack's match scan
  // ran off the end of the buffer.
  EXPECT_EQ(dec.pending(), 1u);
  const RawEvent tail[] = {{101, 130}};
  dec.Feed(tail, 1);
  EXPECT_EQ(dec.pending(), 0u);
  const DecodedTrace d = dec.Finish();
  EXPECT_EQ(d.orphan_exits, 0u);
  EXPECT_EQ(ToWholeUsec(d.idle_time), 80u);
  EXPECT_EQ(ToWholeUsec(d.Stats("a")->net), 50u);
}

TEST(StreamingDecoder, SnapshotTracksTheStreamAndMatchesFinishWhenQuiescent) {
  const TagFile& names = MakeNames();
  StreamingDecoder dec(names);
  const RawEvent first[] = {{100, 0}, {102, 10}, {103, 40}};
  dec.Feed(first, 3);
  DecodedTrace snap = dec.SnapshotStats();
  EXPECT_EQ(snap.event_count, 3u);
  ASSERT_NE(snap.Stats("b"), nullptr);
  EXPECT_EQ(ToWholeUsec(snap.Stats("b")->net), 30u);
  // `a` is still open: the snapshot shows its time accumulated to date.
  ASSERT_NE(snap.Stats("a"), nullptr);
  EXPECT_EQ(ToWholeUsec(snap.Stats("a")->net), 10u);

  const RawEvent second[] = {{101, 100}};
  dec.Feed(second, 1);
  snap = dec.SnapshotStats();
  const std::string before = Summary(snap).Format(0);
  const DecodedTrace fin = dec.Finish();
  // Nothing was pending, so the last snapshot equals the final result.
  EXPECT_EQ(before, Summary(fin).Format(0));
  EXPECT_EQ(ToWholeUsec(fin.Stats("a")->net), 70u);
}

TEST(StreamingDecoder, BoundedMemoryModePrunesFinishedCalls) {
  const TagFile& names = MakeNames();
  StreamingDecoder dec(names);  // retain_structure = false
  // 10000 sequential top-level calls; the live tree must not grow with them.
  std::uint32_t now = 0;
  for (int i = 0; i < 10000; ++i) {
    const RawEvent pair[] = {{100, now & 0xFFFFFF}, {101, (now + 5) & 0xFFFFFF}};
    now += 10;
    dec.Feed(pair, 2);
    EXPECT_EQ(dec.pending(), 0u);
  }
  const DecodedTrace d = dec.Finish();
  EXPECT_EQ(d.Stats("a")->calls, 10000u);
  // The retained structure is only the synthetic root.
  ASSERT_EQ(d.stacks.size(), 1u);
  EXPECT_TRUE(d.stacks[0]->root->children.empty());
  EXPECT_TRUE(d.steps.empty());
}

}  // namespace
}  // namespace hwprof
