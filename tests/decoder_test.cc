// Decoder tests against hand-built raw traces with known ground truth:
// nesting, net/elapsed attribution, timer wrap, context switches,
// truncation, anomalies.

#include <gtest/gtest.h>

#include <algorithm>

#include "src/analysis/decoder.h"
#include "src/base/rng.h"
#include "src/instr/tag_file.h"
#include "src/profhw/raw_trace.h"
#include "src/profhw/usec_timer.h"

namespace hwprof {
namespace {

// Builds the names file used by most tests:
//   a/100, b/102, c/104, swtch/200(!), MARK/300(=).
// Kept alive for the binary's lifetime: decoded traces point into it.
const TagFile& MakeNames() {
  static const TagFile* names = [] {
    auto* file = new TagFile();
    HWPROF_CHECK(TagFile::Parse(
        "a/100\n"
        "b/102\n"
        "c/104\n"
        "swtch/200!\n"
        "MARK/300=\n",
        file));
    return file;
  }();
  return *names;
}

RawTrace Trace(std::initializer_list<RawEvent> events) {
  RawTrace raw;
  raw.events = events;
  return raw;
}

TEST(Decoder, SimpleCallPair) {
  const TagFile& names = MakeNames();
  // a runs from t=10us to t=60us.
  DecodedTrace d = Decoder::Decode(Trace({{100, 10}, {101, 60}}), names);
  EXPECT_EQ(d.unknown_tags, 0u);
  EXPECT_EQ(d.orphan_exits, 0u);
  EXPECT_EQ(d.unclosed_entries, 0u);
  const FuncStats* a = d.Stats("a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->calls, 1u);
  EXPECT_EQ(ToWholeUsec(a->elapsed), 50u);
  EXPECT_EQ(ToWholeUsec(a->net), 50u);
}

TEST(Decoder, NestedCallsSplitNetAndElapsed) {
  const TagFile& names = MakeNames();
  // a [10..100] contains b [30..70]: a.net=60-20=... a elapsed 90, b 40,
  // a net 50.
  DecodedTrace d = Decoder::Decode(Trace({{100, 10}, {102, 30}, {103, 70}, {101, 100}}),
                                   names);
  const FuncStats* a = d.Stats("a");
  const FuncStats* b = d.Stats("b");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(ToWholeUsec(a->elapsed), 90u);
  EXPECT_EQ(ToWholeUsec(a->net), 50u);
  EXPECT_EQ(ToWholeUsec(b->elapsed), 40u);
  EXPECT_EQ(ToWholeUsec(b->net), 40u);
}

TEST(Decoder, SiblingCallsAggregate) {
  const TagFile& names = MakeNames();
  // Two calls of b inside a: per-call nets 10 and 30 -> min 10, max 30.
  DecodedTrace d = Decoder::Decode(
      Trace({{100, 0}, {102, 10}, {103, 20}, {102, 40}, {103, 70}, {101, 100}}), names);
  const FuncStats* b = d.Stats("b");
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->calls, 2u);
  EXPECT_EQ(ToWholeUsec(b->net), 40u);
  EXPECT_EQ(ToWholeUsec(b->min_net), 10u);
  EXPECT_EQ(ToWholeUsec(b->max_net), 30u);
  EXPECT_EQ(ToWholeUsec(b->AvgNet()), 20u);
  const FuncStats* a = d.Stats("a");
  EXPECT_EQ(ToWholeUsec(a->net), 60u);
}

TEST(Decoder, InlineMarkersDoNotConsumeTime) {
  const TagFile& names = MakeNames();
  DecodedTrace d =
      Decoder::Decode(Trace({{100, 0}, {300, 40}, {101, 100}}), names);
  const FuncStats* a = d.Stats("a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(ToWholeUsec(a->net), 100u);
  // The marker appears in the steps.
  bool saw_mark = false;
  for (const TraceStep& s : d.steps) {
    if (s.node->fn != nullptr && s.node->fn->name == "MARK") {
      saw_mark = true;
      EXPECT_TRUE(s.node->inline_marker);
    }
  }
  EXPECT_TRUE(saw_mark);
}

TEST(Decoder, TimerWrapReconstructsIntervals) {
  const TagFile& names = MakeNames();
  // Entry just below the wrap, exit just after: interval = 20us despite
  // the raw timestamps going "backwards".
  const std::uint32_t top = (1u << 24) - 10;
  DecodedTrace d = Decoder::Decode(Trace({{100, top}, {101, 10}}), names);
  const FuncStats* a = d.Stats("a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(ToWholeUsec(a->elapsed), 20u);
  EXPECT_EQ(ToWholeUsec(d.ElapsedTotal()), 20u);
}

TEST(Decoder, MultipleWrapsAcrossTheRun) {
  const TagFile& names = MakeNames();
  // Three calls, each 10s apart: total run 40s — far beyond one 16.7s wrap,
  // reconstructed correctly because *consecutive* gaps stay under the wrap.
  RawTrace raw;
  const UsecTimer timer;
  for (int i = 0; i < 4; ++i) {
    const Nanoseconds entry = static_cast<Nanoseconds>(i) * 10 * kSecond;
    raw.events.push_back({100, timer.Sample(entry)});
    raw.events.push_back({101, timer.Sample(entry + Sec(1))});
  }
  DecodedTrace d = Decoder::Decode(raw, names);
  EXPECT_EQ(ToWholeUsec(d.ElapsedTotal()), 31u * 1000 * 1000);
  const FuncStats* a = d.Stats("a");
  EXPECT_EQ(a->calls, 4u);
  EXPECT_EQ(ToWholeUsec(a->net), 4u * 1000 * 1000);
}

TEST(Decoder, UnknownTagsCountedAndSkipped) {
  const TagFile& names = MakeNames();
  DecodedTrace d = Decoder::Decode(Trace({{100, 0}, {999, 10}, {101, 20}}), names);
  EXPECT_EQ(d.unknown_tags, 1u);
  const FuncStats* a = d.Stats("a");
  EXPECT_EQ(a->calls, 1u);
  EXPECT_EQ(ToWholeUsec(a->net), 20u);
}

TEST(Decoder, TruncatedCaptureForceClosesOpenCalls) {
  const TagFile& names = MakeNames();
  RawTrace raw = Trace({{100, 0}, {102, 10}});
  raw.overflowed = true;
  DecodedTrace d = Decoder::Decode(raw, names);
  EXPECT_TRUE(d.truncated);
  EXPECT_EQ(d.unclosed_entries, 2u);
  const FuncStats* a = d.Stats("a");
  const FuncStats* b = d.Stats("b");
  EXPECT_EQ(a->calls, 1u);
  EXPECT_EQ(b->calls, 1u);
  // Closed at the last event: a spans 10us total, b 0.
  EXPECT_EQ(ToWholeUsec(a->elapsed), 10u);
}

TEST(Decoder, OrphanExitCounted) {
  const TagFile& names = MakeNames();
  DecodedTrace d = Decoder::Decode(Trace({{103, 10}}), names);
  EXPECT_EQ(d.orphan_exits, 1u);
}

TEST(Decoder, ContextSwitchIdleAccounting) {
  const TagFile& names = MakeNames();
  // Process 1: a [0..] calls swtch at 20; idle until 100 where the swtch
  // exit resumes... a fresh context runs b [110..150]. Then at 200 a swtch
  // entry/exit pair resumes process 1 (lookahead sees a's exit at 230).
  DecodedTrace d = Decoder::Decode(Trace({
                                       {100, 0},    // a entry (proc 1)
                                       {200, 20},   // swtch entry: suspend
                                       {201, 100},  // swtch exit: resume ->
                                                    //   lookahead = b entry: fresh ctx
                                       {102, 110},  // b entry (proc 2)
                                       {103, 150},  // b exit
                                       {200, 160},  // swtch entry (proc 2 blocks)
                                       {201, 220},  // swtch exit -> lookahead a exit
                                       {101, 230},  // a exit (proc 1 resumed)
                                   }),
                                   names);
  EXPECT_EQ(d.orphan_exits, 0u);
  // Idle = the two swtch windows: [20..100] + [160..220] = 140us.
  EXPECT_EQ(ToWholeUsec(d.idle_time), 140u);
  const FuncStats* a = d.Stats("a");
  ASSERT_NE(a, nullptr);
  // a's on-CPU time: [0..20] while calling swtch... the swtch body counts
  // as a's child; a's net = [0..20] + [220..230] = 30us.
  EXPECT_EQ(ToWholeUsec(a->net), 30u);
  const FuncStats* b = d.Stats("b");
  EXPECT_EQ(ToWholeUsec(b->net), 40u);
  // The run time excludes idle.
  EXPECT_EQ(ToWholeUsec(d.RunTime()), 230u - 140u);
}

TEST(Decoder, InterruptsInsideIdleAreNotIdle) {
  const TagFile& names = MakeNames();
  // swtch window [10..100] contains an interrupt-ish call b [30..60]:
  // idle must be 90 - 30 = 60us.
  DecodedTrace d = Decoder::Decode(Trace({
                                       {100, 0},    // a entry
                                       {200, 10},   // swtch entry
                                       {102, 30},   // b entry (interrupt during idle)
                                       {103, 60},   // b exit
                                       {201, 100},  // swtch exit
                                       {101, 120},  // a exit (same proc resumed)
                                   }),
                                   names);
  EXPECT_EQ(ToWholeUsec(d.idle_time), 60u);
  const FuncStats* b = d.Stats("b");
  EXPECT_EQ(ToWholeUsec(b->net), 30u);
  const FuncStats* swtch = d.Stats("swtch");
  EXPECT_EQ(ToWholeUsec(swtch->elapsed), 90u);  // window inclusive of the interrupt
  EXPECT_EQ(ToWholeUsec(swtch->net), 60u);      // idle excludes it
}

TEST(Decoder, SuspendedFrameAccumulatesNothingOffCpu) {
  const TagFile& names = MakeNames();
  // Proc 1 blocks inside b (nested in a) for a long time while proc 2 (c)
  // runs. b's elapsed must reflect only its on-CPU spans.
  DecodedTrace d = Decoder::Decode(Trace({
                                       {100, 0},     // a entry
                                       {102, 10},    // b entry
                                       {200, 20},    // swtch entry (b blocks)
                                       {201, 30},    // swtch exit -> fresh (c entry next)
                                       {104, 40},    // c entry (proc 2) [long run]
                                       {105, 1030},  // c exit
                                       {200, 1040},  // swtch entry
                                       {201, 1100},  // swtch exit -> lookahead: b exit
                                       {103, 1110},  // b exit (proc 1)
                                       {101, 1120},  // a exit
                                   }),
                                   names);
  const FuncStats* b = d.Stats("b");
  ASSERT_NE(b, nullptr);
  // b on-CPU: [10..20] + (swtch child [20..30] counts in elapsed) +
  // [1100..1110] = 10 + 10 + 10 = 30 elapsed; net = 20.
  EXPECT_EQ(ToWholeUsec(b->elapsed), 30u);
  EXPECT_EQ(ToWholeUsec(b->net), 20u);
  // c's 990us belong to c alone.
  EXPECT_EQ(ToWholeUsec(d.Stats("c")->net), 990u);
}

TEST(Decoder, StepsAreChronological) {
  const TagFile& names = MakeNames();
  Rng rng(5);
  // A random but well-formed single-proc trace.
  RawTrace raw;
  std::uint32_t t = 0;
  for (int i = 0; i < 50; ++i) {
    t += static_cast<std::uint32_t>(1 + rng.NextBelow(100));
    raw.events.push_back({100, t});
    t += static_cast<std::uint32_t>(1 + rng.NextBelow(100));
    raw.events.push_back({101, t});
  }
  DecodedTrace d = Decoder::Decode(raw, names);
  for (std::size_t i = 1; i < d.steps.size(); ++i) {
    EXPECT_GE(d.steps[i].t, d.steps[i - 1].t);
  }
  EXPECT_EQ(d.Stats("a")->calls, 50u);
}

// Property test: random balanced call trees decode to matching stats.
class DecoderPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DecoderPropertyTest, RandomBalancedTreesDecodeExactly) {
  TagFile names;
  const int kFuncs = 8;
  for (int i = 0; i < kFuncs; ++i) {
    ASSERT_TRUE(names.AddFunction("f" + std::to_string(i),
                                  static_cast<std::uint16_t>(100 + 2 * i)));
  }
  Rng rng(GetParam());
  RawTrace raw;
  std::uint32_t now = 0;
  std::vector<int> stack;
  std::uint64_t expected_calls = 0;
  for (int step = 0; step < 400; ++step) {
    now += static_cast<std::uint32_t>(1 + rng.NextBelow(50));
    // Keep at least one call open mid-run so every interval is attributed
    // (the exactness invariant below depends on it).
    const bool open = stack.size() < 6 && (stack.size() <= 1 || rng.NextBool(0.5));
    if (open) {
      const int fn = static_cast<int>(rng.NextBelow(kFuncs));
      stack.push_back(fn);
      raw.events.push_back({static_cast<std::uint16_t>(100 + 2 * fn), now});
      ++expected_calls;
    } else {
      const int fn = stack.back();
      stack.pop_back();
      raw.events.push_back({static_cast<std::uint16_t>(101 + 2 * fn), now});
    }
  }
  while (!stack.empty()) {
    now += 1;
    raw.events.push_back({static_cast<std::uint16_t>(101 + 2 * stack.back()), now});
    stack.pop_back();
  }
  DecodedTrace d = Decoder::Decode(raw, names);
  EXPECT_EQ(d.orphan_exits, 0u);
  EXPECT_EQ(d.unclosed_entries, 0u);
  std::uint64_t total_calls = 0;
  Nanoseconds total_net = 0;
  for (const auto& [name, stats] : d.per_function) {
    total_calls += stats.calls;
    total_net += stats.net;
    EXPECT_LE(stats.min_net, stats.max_net) << name;
    EXPECT_GE(stats.elapsed, stats.net) << name;
  }
  EXPECT_EQ(total_calls, expected_calls);
  // All time is inside some function (the trace starts and ends with
  // top-level entries/exits): sum of nets == elapsed total.
  EXPECT_EQ(total_net, d.ElapsedTotal());
}

INSTANTIATE_TEST_SUITE_P(Seeds, DecoderPropertyTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 17u, 42u, 1993u));

TEST(Decoder, EmptyTraceIsHarmless) {
  const TagFile& names = MakeNames();
  DecodedTrace d = Decoder::Decode(RawTrace{}, names);
  EXPECT_EQ(d.event_count, 0u);
  EXPECT_EQ(d.ElapsedTotal(), 0u);
  EXPECT_TRUE(d.per_function.empty());
}

// --- 24-bit wrap regressions across drain (chunk) boundaries ------------------
// The board's timer wraps every 2^24 us (~16.7 s). With the double-buffered
// readout a wrap can land between two drained banks, so the StreamingDecoder's
// carried-over previous-timestamp must reconstruct the same absolute times the
// one-shot decoder would.

constexpr std::uint32_t kWrap = 1u << 24;

TEST(Decoder, TimerWrapAcrossBankBoundary) {
  const TagFile& names = MakeNames();
  RawTrace raw;
  raw.events = {{100, kWrap - 10}, {101, 10}};  // 20 us call spanning the wrap
  const DecodedTrace batch = Decoder::Decode(raw, names);
  ASSERT_NE(batch.Stats("a"), nullptr);
  EXPECT_EQ(ToWholeUsec(batch.Stats("a")->net), 20u);

  // Same trace, drained as two banks with the boundary exactly at the wrap.
  StreamingDecoder dec(names);
  dec.Feed(raw.events.data(), 1);
  dec.Feed(raw.events.data() + 1, 1);
  const DecodedTrace inc = dec.Finish();
  EXPECT_EQ(ToWholeUsec(inc.Stats("a")->net), 20u);
  EXPECT_EQ(inc.end_time - inc.start_time, batch.end_time - batch.start_time);
}

TEST(Decoder, GapJustUnderTheWrapHorizonAcrossChunks) {
  const TagFile& names = MakeNames();
  // Two events 2^24 - 1 ticks apart: the largest forward gap the 24-bit
  // counter can represent. One tick more would alias to a gap of zero.
  RawTrace raw;
  raw.events = {{100, 7}, {101, 6}};  // delta = kWrap - 1
  const DecodedTrace batch = Decoder::Decode(raw, names);
  ASSERT_NE(batch.Stats("a"), nullptr);
  EXPECT_EQ(ToWholeUsec(batch.Stats("a")->net), static_cast<std::uint64_t>(kWrap - 1));

  StreamingDecoder dec(names);
  dec.Feed(raw.events.data(), 1);
  dec.Feed(raw.events.data() + 1, 1);
  const DecodedTrace inc = dec.Finish();
  EXPECT_EQ(ToWholeUsec(inc.Stats("a")->net), static_cast<std::uint64_t>(kWrap - 1));
}

TEST(Decoder, WrapLandingExactlyOnADrainPoint) {
  const TagFile& names = MakeNames();
  // The sealed bank ends on the last tick before the wrap; the next bank's
  // first event carries timestamp 0.
  RawTrace raw;
  raw.events = {{100, kWrap - 3}, {102, kWrap - 1}, {103, 0}, {101, 2}};
  const DecodedTrace batch = Decoder::Decode(raw, names);
  ASSERT_NE(batch.Stats("b"), nullptr);
  EXPECT_EQ(ToWholeUsec(batch.Stats("b")->net), 1u);
  EXPECT_EQ(ToWholeUsec(batch.Stats("a")->net), 4u);

  StreamingDecoder dec(names);
  dec.Feed(raw.events.data(), 2);
  dec.Feed(raw.events.data() + 2, 2);
  const DecodedTrace inc = dec.Finish();
  EXPECT_EQ(ToWholeUsec(inc.Stats("b")->net), 1u);
  EXPECT_EQ(ToWholeUsec(inc.Stats("a")->net), 4u);
  EXPECT_EQ(inc.end_time - inc.start_time, batch.end_time - batch.start_time);
}

TEST(Decoder, MultipleWrapsAcrossManySmallChunks) {
  const TagFile& names = MakeNames();
  RawTrace raw;
  std::uint32_t now = kWrap - 50;
  for (int i = 0; i < 40; ++i) {
    raw.events.push_back({100, now & (kWrap - 1)});
    now += 600 * 1000;  // 0.6 s per call: wraps roughly every 28 events
    raw.events.push_back({101, now & (kWrap - 1)});
    now += 400 * 1000;
  }
  const DecodedTrace batch = Decoder::Decode(raw, names);

  StreamingDecoder dec(names);
  for (std::size_t i = 0; i < raw.events.size(); i += 3) {
    dec.Feed(raw.events.data() + i, std::min<std::size_t>(3, raw.events.size() - i));
  }
  const DecodedTrace inc = dec.Finish();
  EXPECT_EQ(inc.Stats("a")->net, batch.Stats("a")->net);
  EXPECT_EQ(inc.Stats("a")->calls, batch.Stats("a")->calls);
  EXPECT_EQ(inc.end_time - inc.start_time, batch.end_time - batch.start_time);
  EXPECT_EQ(batch.end_time - batch.start_time, Sec(40) - Usec(400 * 1000));
}

}  // namespace
}  // namespace hwprof
