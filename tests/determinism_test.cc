// Cross-cutting simulator properties: bit-exact determinism, exact
// trigger-accounting arithmetic, and agreement between the analyser's view
// and the machine's own accounting.

#include <gtest/gtest.h>

#include "src/analysis/decoder.h"
#include "src/analysis/histogram.h"
#include "src/kern/clock.h"
#include "src/analysis/summary.h"
#include "src/kern/user_env.h"
#include "src/workloads/testbed.h"
#include "src/workloads/workloads.h"

namespace hwprof {
namespace {

TEST(Determinism, IdenticalRunsProduceIdenticalCaptures) {
  // The whole point of a virtual-time simulator: two runs of the same
  // workload are bit-for-bit identical, captures included.
  auto run = [] {
    Testbed tb;
    tb.Arm();
    RunNetworkReceive(tb, Sec(2), 128 * 1024, false);
    return tb.StopAndUpload();
  };
  const RawTrace a = run();
  const RawTrace b = run();
  ASSERT_EQ(a.events.size(), b.events.size());
  EXPECT_EQ(a.events, b.events);
}

TEST(Determinism, ForkExecIsDeterministicToo) {
  auto run = [] {
    Testbed tb;
    tb.Arm();
    ForkExecResult r = RunForkExec(tb, 3, Sec(5));
    return std::make_pair(r.cycle_times, tb.StopAndUpload().events);
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

TEST(Determinism, DiskRandomnessIsSeeded) {
  auto run = [](std::uint64_t seed) {
    TestbedConfig config;
    config.kernel.rng_seed = seed;
    Testbed tb(config);
    FsReadResult r = RunFsRandomReads(tb, 10, Sec(30));
    return r.read_times;
  };
  EXPECT_EQ(run(1), run(1));
  EXPECT_NE(run(1), run(2));  // seeds matter (rotational latency differs)
}

TEST(ExactAccounting, LeafSplCallNetIsTheModelledCost) {
  // A leaf function's decoded net time equals body cost + the exit
  // trigger's bus cycle (the entry trigger lands before the entry event).
  Testbed tb;
  Kernel& k = tb.kernel();
  tb.Arm();
  k.Spawn("p", [&](UserEnv& env) {
    (void)env;
    const int s = k.spl().splnet();
    k.spl().splx(s);
  });
  // Stop the clock so nothing else contributes.
  k.clocksys().Stop();
  k.Run(Msec(10));
  DecodedTrace d = Decoder::Decode(tb.StopAndUpload(), tb.tags());
  const FuncStats* splnet = d.Stats("splnet");
  ASSERT_NE(splnet, nullptr);
  ASSERT_EQ(splnet->calls, 1u);
  // The board's 1 MHz timer quantises each timestamp to a microsecond, so
  // the decoded interval is exact only to +/-1 us.
  const double expected = static_cast<double>(tb.machine().cost().spl_raise_ns +
                                              tb.machine().cost().trigger_read_ns);
  EXPECT_NEAR(static_cast<double>(splnet->net), expected, 1000.0);
  const FuncStats* splx = d.Stats("splx");
  ASSERT_NE(splx, nullptr);
  EXPECT_NEAR(static_cast<double>(splx->net),
              static_cast<double>(tb.machine().cost().splx_ns +
                                  tb.machine().cost().trigger_read_ns),
              1000.0);
}

TEST(ExactAccounting, DecodedRunTimeMatchesCpuBusyTime) {
  // Over a capture window, the analyser's "accumulated run time" must track
  // the machine's own busy accounting: everything busy happens inside some
  // profiled function except syscall stubs and user compute.
  Testbed tb;
  Kernel& k = tb.kernel();
  const Nanoseconds busy0 = k.cpu().busy_ns();
  const Nanoseconds idle0 = k.cpu().idle_ns();
  tb.Arm();
  RunNetworkReceive(tb, Sec(2), 128 * 1024, false);
  RawTrace raw = tb.StopAndUpload();
  const Nanoseconds busy = k.cpu().busy_ns() - busy0;
  const Nanoseconds idle = k.cpu().idle_ns() - idle0;
  DecodedTrace d = Decoder::Decode(raw, tb.tags());
  if (raw.overflowed) {
    // The capture stopped early; compare rates instead of totals.
    const double busy_frac =
        static_cast<double>(busy) / static_cast<double>(busy + idle);
    const double decoded_frac = static_cast<double>(d.RunTime()) /
                                static_cast<double>(d.ElapsedTotal());
    EXPECT_NEAR(busy_frac, decoded_frac, 0.08);
  } else {
    EXPECT_LE(d.RunTime(), busy + Msec(1));
    EXPECT_GT(d.RunTime(), busy * 7 / 10);
  }
}

TEST(ExactAccounting, SummaryNetSumsStayWithinRunTime) {
  Testbed tb;
  tb.Arm();
  RunMixed(tb, Sec(2));
  DecodedTrace d = Decoder::Decode(tb.StopAndUpload(), tb.tags());
  Summary s(d);
  double pct_sum = 0;
  for (const SummaryRow& row : s.rows()) {
    pct_sum += row.pct_net;
  }
  EXPECT_LE(pct_sum, 100.5);  // non-overlapping net shares
  EXPECT_GT(pct_sum, 40.0);   // most busy time is inside profiled functions
}

TEST(ExactAccounting, BcopyHistogramIsBimodalUnderNetworkLoad) {
  // Fig 3's giveaway signature: tiny mbuf copies vs millisecond driver
  // copies.
  Testbed tb;
  tb.Arm();
  RunNetworkReceive(tb, Sec(2), 128 * 1024, false);
  DecodedTrace d = Decoder::Decode(tb.StopAndUpload(), tb.tags());
  Histogram h = Histogram::ForFunction(d, "bcopy");
  ASSERT_GT(h.Total(), 20u);
  // Population both below 256 µs and above 512 µs.
  std::uint64_t low = 0;
  std::uint64_t high = 0;
  for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
    if (Histogram::BucketFloor(b) < 256) {
      low += h.Count(b);
    }
    if (Histogram::BucketFloor(b) >= 512) {
      high += h.Count(b);
    }
  }
  EXPECT_GT(low, 0u);
  EXPECT_GT(high, 0u);
}

}  // namespace
}  // namespace hwprof
