// Differential capture comparison (TraceDiff / hwprof_analyze --diff):
// exact row values on synthetic A/B pairs, the inclusive noise threshold,
// the exit-code contract the CI perf gate relies on, byte-identical output
// across decode paths (serial vs --jobs N) and storage formats (text vs
// hwpb), and direct CallGraph/Grouping coverage the diff builds on.

#include "src/analysis/diff.h"

#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <initializer_list>
#include <string>
#include <vector>

#include "src/analysis/callgraph.h"
#include "src/analysis/decoder.h"
#include "src/analysis/grouping.h"
#include "src/analysis/parallel.h"
#include "src/base/assert.h"
#include "src/profhw/smart_socket.h"
#include "tests/trace_testutil.h"
#include "tools/analyze_main.h"

namespace hwprof {
namespace {

// a{ b{} } then a top-level c{}: a net 70, b net 30, c net 100.
RawTrace BaselineTrace() {
  return Trace({{100, 0}, {102, 10}, {103, 40}, {101, 100}, {104, 150}, {105, 250}});
}

// Same shape, but b runs 10 us longer (stealing from a), c is unchanged,
// and a new function d{} appears at the end.
RawTrace CandidateTrace() {
  return Trace({{100, 0}, {102, 10}, {103, 50}, {101, 100}, {104, 150}, {105, 250},
                {106, 300}, {107, 310}});
}

std::map<std::string, std::string> AbcGroups() {
  return {{"a", "net"}, {"b", "net"}, {"c", "vm"}};
}

TraceDiff MakeDiff(const RawTrace& a, const RawTrace& b, DiffOptions options) {
  const DecodedTrace da = Decoder::Decode(a, MakeNames());
  const DecodedTrace db = Decoder::Decode(b, MakeNames());
  return TraceDiff(da, db, AbcGroups(), options);
}

TraceDiff MakeDiff(const RawTrace& a, const RawTrace& b, double noise_pct = 0.0) {
  return MakeDiff(a, b, DiffOptions{.noise_pct = noise_pct});
}

// --- TraceDiff rows ---------------------------------------------------------------

TEST(TraceDiff, IdenticalTracesAreAllSuppressed) {
  const TraceDiff diff = MakeDiff(BaselineTrace(), BaselineTrace());
  EXPECT_FALSE(diff.HasRegression());
  EXPECT_EQ(diff.regression_count(), 0u);
  for (const auto* section : {&diff.functions(), &diff.edges(), &diff.groups()}) {
    EXPECT_FALSE(section->empty());
    for (const DiffRow& row : *section) {
      EXPECT_EQ(row.delta_us, 0) << row.key;
      EXPECT_TRUE(row.suppressed) << row.key;
      EXPECT_FALSE(row.regressed) << row.key;
    }
  }
  EXPECT_EQ(diff.totals().a_elapsed_us, diff.totals().b_elapsed_us);
  EXPECT_EQ(diff.totals().a_events, diff.totals().b_events);
  EXPECT_NE(diff.FormatText().find("(no rows above noise)"), std::string::npos);
  EXPECT_NE(diff.FormatText().find("regressions above noise: 0"), std::string::npos);
}

TEST(TraceDiff, FunctionRowsCarryExactDeltas) {
  const TraceDiff diff = MakeDiff(BaselineTrace(), CandidateTrace());

  const DiffRow* b = diff.Function("b");
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->a_us, 30u);
  EXPECT_EQ(b->b_us, 40u);
  EXPECT_EQ(b->delta_us, 10);
  EXPECT_NEAR(b->rel_pct, 100.0 / 3.0, 1e-9);
  EXPECT_TRUE(b->regressed);

  const DiffRow* a = diff.Function("a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->a_us, 70u);
  EXPECT_EQ(a->b_us, 60u);
  EXPECT_EQ(a->delta_us, -10);
  EXPECT_FALSE(a->regressed);  // faster is never a regression

  const DiffRow* c = diff.Function("c");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->delta_us, 0);
  EXPECT_TRUE(c->suppressed);  // unchanged rows hide even at noise 0

  const DiffRow* d = diff.Function("d");
  ASSERT_NE(d, nullptr);
  EXPECT_TRUE(d->only_b);
  EXPECT_TRUE(d->regressed);  // new-in-candidate is always a regression

  // Sorted by signed delta descending, key ascending on ties: b and d tie
  // at +10, then c (0), then a (-10).
  ASSERT_EQ(diff.functions().size(), 4u);
  EXPECT_EQ(diff.functions()[0].key, "b");
  EXPECT_EQ(diff.functions()[1].key, "d");
  EXPECT_EQ(diff.functions()[2].key, "c");
  EXPECT_EQ(diff.functions()[3].key, "a");
}

TEST(TraceDiff, EdgeRowsUseCalleeElapsedUnderEachCaller) {
  const TraceDiff diff = MakeDiff(BaselineTrace(), CandidateTrace());

  const DiffRow* ab = diff.Edge("a", "b");
  ASSERT_NE(ab, nullptr);
  EXPECT_EQ(ab->a_us, 30u);
  EXPECT_EQ(ab->b_us, 40u);
  EXPECT_TRUE(ab->regressed);

  const DiffRow* top_d = diff.Edge(kSpontaneous, "d");
  ASSERT_NE(top_d, nullptr);
  EXPECT_TRUE(top_d->only_b);
  EXPECT_TRUE(top_d->regressed);

  const DiffRow* top_a = diff.Edge(kSpontaneous, "a");
  ASSERT_NE(top_a, nullptr);
  EXPECT_EQ(top_a->delta_us, 0);  // a's elapsed (100 us) is unchanged
  EXPECT_TRUE(top_a->suppressed);
}

TEST(TraceDiff, GroupRowsFollowTheTagFileLabels) {
  const TraceDiff diff = MakeDiff(BaselineTrace(), CandidateTrace());

  // a and b both map to "net"; b's +10 is a's -10, so the abstraction nets out.
  const DiffRow* net = diff.Group("net");
  ASSERT_NE(net, nullptr);
  EXPECT_EQ(net->a_us, 100u);
  EXPECT_EQ(net->b_us, 100u);
  EXPECT_TRUE(net->suppressed);

  const DiffRow* vm = diff.Group("vm");
  ASSERT_NE(vm, nullptr);
  EXPECT_TRUE(vm->suppressed);

  // d is unmapped, so it surfaces as a new "other" abstraction.
  const DiffRow* other = diff.Group("other");
  ASSERT_NE(other, nullptr);
  EXPECT_TRUE(other->only_b);
  EXPECT_TRUE(other->regressed);
}

TEST(TraceDiff, NoiseThresholdIsInclusive) {
  const RawTrace base = Trace({{100, 0}, {101, 1000}});
  const RawTrace at_threshold = Trace({{100, 0}, {101, 1050}});   // exactly +5 %
  const RawTrace above_threshold = Trace({{100, 0}, {101, 1051}});  // +5.1 %

  const TraceDiff at = MakeDiff(base, at_threshold, 5.0);
  ASSERT_NE(at.Function("a"), nullptr);
  EXPECT_TRUE(at.Function("a")->suppressed);  // the threshold itself is noise
  EXPECT_FALSE(at.HasRegression());

  const TraceDiff above = MakeDiff(base, above_threshold, 5.0);
  ASSERT_NE(above.Function("a"), nullptr);
  EXPECT_FALSE(above.Function("a")->suppressed);
  EXPECT_TRUE(above.Function("a")->regressed);
  EXPECT_TRUE(above.HasRegression());

  // Symmetric on the improvement side: -5 % is noise, -5.1 % is a visible
  // improvement but never a regression.
  const TraceDiff faster = MakeDiff(base, Trace({{100, 0}, {101, 950}}), 5.0);
  EXPECT_TRUE(faster.Function("a")->suppressed);
  const TraceDiff much_faster = MakeDiff(base, Trace({{100, 0}, {101, 949}}), 5.0);
  EXPECT_FALSE(much_faster.Function("a")->suppressed);
  EXPECT_FALSE(much_faster.Function("a")->regressed);
  EXPECT_FALSE(much_faster.HasRegression());
}

TEST(TraceDiff, GoneRowsAreImprovements) {
  const TraceDiff diff = MakeDiff(CandidateTrace(), BaselineTrace());
  const DiffRow* d = diff.Function("d");
  ASSERT_NE(d, nullptr);
  EXPECT_TRUE(d->only_a);
  EXPECT_EQ(d->rel_pct, -100.0);
  EXPECT_FALSE(d->suppressed);
  EXPECT_FALSE(d->regressed);
  EXPECT_NE(diff.FormatText().find("gone"), std::string::npos);
}

TEST(TraceDiff, ContextSwitchFunctionsStayOutOfRows) {
  // swtch (200!) parks the CPU for 500 us in A and 900 us in B; the real
  // work (a) is identical. An idle shift must not read as a regression.
  const RawTrace idle_a =
      Trace({{100, 0}, {101, 50}, {200, 60}, {201, 560}, {100, 600}, {101, 650}});
  const RawTrace idle_b =
      Trace({{100, 0}, {101, 50}, {200, 60}, {201, 960}, {100, 1000}, {101, 1050}});
  const TraceDiff diff = MakeDiff(idle_a, idle_b);
  EXPECT_EQ(diff.Function("swtch"), nullptr);
  EXPECT_EQ(diff.Edge(kSpontaneous, "swtch"), nullptr);
  for (const DiffRow& row : diff.groups()) {
    EXPECT_EQ(row.key.find("swtch"), std::string::npos);
  }
  EXPECT_FALSE(diff.HasRegression());
  // The shift is still visible in the totals header.
  EXPECT_GT(diff.totals().b_idle_us, diff.totals().a_idle_us);
}

TEST(TraceDiff, ZeroBaselineRowsStayFiniteAtAnyNoise) {
  // A row the baseline never saw has no finite relative delta; it must
  // still render cleanly and regress even under an absurd noise threshold.
  const TraceDiff diff = MakeDiff(BaselineTrace(), CandidateTrace(),
                                  /*noise_pct=*/1e9);
  const DiffRow* d = diff.Function("d");
  ASSERT_NE(d, nullptr);
  EXPECT_TRUE(d->only_b);
  EXPECT_FALSE(d->suppressed);  // new rows never noise-suppress
  EXPECT_TRUE(d->regressed);
  EXPECT_TRUE(std::isfinite(d->rel_pct));
  EXPECT_TRUE(diff.HasRegression());

  for (const std::string& report : {diff.FormatText(), diff.FormatJson()}) {
    EXPECT_EQ(report.find("inf"), std::string::npos);
    EXPECT_EQ(report.find("nan"), std::string::npos);
  }
  EXPECT_NE(diff.FormatText().find("new"), std::string::npos);
  EXPECT_NE(diff.FormatJson().find("\"rel_pct\": null, \"status\": \"new\""),
            std::string::npos);
}

TEST(TraceDiff, ZeroTimeOnBothSidesIsSuppressedNotRegressed) {
  // d enters and exits on the same microsecond in both captures: zero time
  // each side, so there is nothing to compare — even though the call counts
  // differ (1 vs 2).
  const RawTrace a = Trace({{100, 0}, {101, 50}, {106, 60}, {107, 60}});
  const RawTrace b = Trace({{100, 0}, {101, 50}, {106, 60}, {107, 60},
                            {106, 70}, {107, 70}});
  const TraceDiff diff = MakeDiff(a, b);
  const DiffRow* d = diff.Function("d");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->a_us, 0u);
  EXPECT_EQ(d->b_us, 0u);
  EXPECT_TRUE(d->suppressed);
  EXPECT_FALSE(d->regressed);
  EXPECT_EQ(d->rel_pct, 0.0);
}

TEST(TraceDiff, QuantumFloorSuppressesPerCallJitter) {
  // a: one call, 1000 us -> 1010 us (+1 %): within a 10 us/call quantum,
  // beyond a 9 us/call one. The relative threshold alone (0 %) would flag
  // both.
  const RawTrace base = Trace({{100, 0}, {101, 1000}});
  const RawTrace jittered = Trace({{100, 0}, {101, 1010}});

  const TraceDiff lenient =
      MakeDiff(base, jittered, DiffOptions{.quantum_us = 10.0});
  ASSERT_NE(lenient.Function("a"), nullptr);
  EXPECT_TRUE(lenient.Function("a")->suppressed);
  EXPECT_FALSE(lenient.HasRegression());

  const TraceDiff strict =
      MakeDiff(base, jittered, DiffOptions{.quantum_us = 9.0});
  ASSERT_NE(strict.Function("a"), nullptr);
  EXPECT_FALSE(strict.Function("a")->suppressed);
  EXPECT_TRUE(strict.Function("a")->regressed);
  EXPECT_TRUE(strict.HasRegression());

  // The floor scales per call: two calls drifting +5 us each sit inside a
  // 5 us/call quantum.
  const RawTrace two_calls = Trace({{100, 0}, {101, 1000}, {100, 2000}, {101, 3000}});
  const RawTrace two_jittered =
      Trace({{100, 0}, {101, 1005}, {100, 2000}, {101, 3005}});
  const TraceDiff scaled =
      MakeDiff(two_calls, two_jittered, DiffOptions{.quantum_us = 5.0});
  EXPECT_TRUE(scaled.Function("a")->suppressed);

  // New rows are measured on one side only; the quantum never hides them.
  const TraceDiff with_new = MakeDiff(BaselineTrace(), CandidateTrace(),
                                      DiffOptions{.quantum_us = 1e9});
  ASSERT_NE(with_new.Function("d"), nullptr);
  EXPECT_FALSE(with_new.Function("d")->suppressed);
  EXPECT_TRUE(with_new.Function("d")->regressed);

  // The floor is announced in both report formats.
  EXPECT_NE(lenient.FormatText().find("quantum floor: 10.00 us/call"),
            std::string::npos);
  EXPECT_NE(lenient.FormatJson().find("\"quantum_us\": 10.00"),
            std::string::npos);
}

TEST(TraceDiff, GateNetDemotesEdgeRowsToAdvisory) {
  // b steals 10 us from a: the function row and the a->b edge both worsen.
  // With --gate net the edge still prints but no longer regresses.
  const DiffOptions gate_net{.gate_edges = false};
  const TraceDiff diff = MakeDiff(BaselineTrace(), CandidateTrace(), gate_net);

  const DiffRow* edge = diff.Edge("a", "b");
  ASSERT_NE(edge, nullptr);
  EXPECT_GT(edge->delta_us, 0);
  EXPECT_FALSE(edge->suppressed);  // still reported
  EXPECT_FALSE(edge->regressed);   // but advisory

  // Net-time sections still gate: the b function row regresses as before.
  ASSERT_NE(diff.Function("b"), nullptr);
  EXPECT_TRUE(diff.Function("b")->regressed);
  EXPECT_TRUE(diff.HasRegression());

  // A new-in-candidate edge is advisory too; the new *function* still gates.
  for (const DiffRow& row : diff.edges()) {
    EXPECT_FALSE(row.regressed) << row.key;
  }
  EXPECT_NE(diff.FormatText().find("per-call-edge elapsed (advisory)"),
            std::string::npos);
  EXPECT_NE(diff.FormatJson().find(
                "\"gated_sections\": [\"functions\", \"groups\"]"),
            std::string::npos);

  // Compared against the default gate, only edge regressions disappear.
  const TraceDiff gate_all = MakeDiff(BaselineTrace(), CandidateTrace());
  EXPECT_GT(gate_all.regression_count(), diff.regression_count());
  EXPECT_EQ(gate_all.FormatText().find("(advisory)"), std::string::npos);
}

// --- Determinism ------------------------------------------------------------------

TEST(DiffDeterminism, ByteIdenticalAcrossDecodePaths) {
  const RawTrace raw_a = FuzzTrace(11, 4000);
  const RawTrace raw_b = FuzzTrace(22, 4000);
  const TagFile& names = MakeNames();
  const std::map<std::string, std::string> groups = AbcGroups();
  const DiffOptions options{.noise_pct = 1.0};

  const DecodedTrace serial_a = Decoder::Decode(raw_a, names);
  const DecodedTrace serial_b = Decoder::Decode(raw_b, names);
  const TraceDiff serial(serial_a, serial_b, groups, options);
  const std::string text = serial.FormatText();
  const std::string json = serial.FormatJson();

  for (unsigned jobs : {1u, 2u, 8u}) {
    for (std::size_t target : {std::size_t{1}, std::size_t{64}}) {
      ParallelOptions popts;
      popts.jobs = jobs;
      popts.shard_target_ops = target;
      const DecodedTrace par_a = DecodeParallel(raw_a, names, popts);
      const DecodedTrace par_b = DecodeParallel(raw_b, names, popts);
      const TraceDiff par(par_a, par_b, groups, options);
      EXPECT_EQ(par.FormatText(), text) << "jobs=" << jobs << " target=" << target;
      EXPECT_EQ(par.FormatJson(), json) << "jobs=" << jobs << " target=" << target;
    }
  }
}

// --- The --diff CLI ---------------------------------------------------------------

struct DiffFiles {
  std::string a_text, a_binary;
  std::string b_text, b_binary;
  std::string names;
};

DiffFiles WriteDiffFiles() {
  DiffFiles files;
  const std::string dir = ::testing::TempDir();
  files.a_text = dir + "/diff_a.hwprof";
  files.a_binary = dir + "/diff_a.hwpb";
  files.b_text = dir + "/diff_b.hwprof";
  files.b_binary = dir + "/diff_b.hwpb";
  files.names = dir + "/diff.names";
  const RawTrace raw_a = FuzzTrace(11, 4000);
  const RawTrace raw_b = FuzzTrace(22, 4000);
  HWPROF_CHECK(SaveCapture(raw_a, files.a_text, CaptureFormat::kText));
  HWPROF_CHECK(SaveCapture(raw_a, files.a_binary, CaptureFormat::kBinary));
  HWPROF_CHECK(SaveCapture(raw_b, files.b_text, CaptureFormat::kText));
  HWPROF_CHECK(SaveCapture(raw_b, files.b_binary, CaptureFormat::kBinary));
  std::ofstream names_out(files.names);
  names_out << MakeNames().Format();
  return files;
}

int RunDiffCli(std::initializer_list<const char*> args, std::string* error,
               std::string* out) {
  std::vector<const char*> argv{"hwprof_analyze", "--diff"};
  argv.insert(argv.end(), args.begin(), args.end());
  ::testing::internal::CaptureStdout();
  const int rc = AnalyzeMain(static_cast<int>(argv.size()), argv.data(), error);
  *out = ::testing::internal::GetCapturedStdout();
  return rc;
}

TEST(DiffCli, IdenticalCapturesExitZero) {
  const DiffFiles files = WriteDiffFiles();
  std::string error, out;
  EXPECT_EQ(RunDiffCli({files.a_text.c_str(), files.a_text.c_str(),
                        files.names.c_str(), "--noise-pct", "2"},
                       &error, &out),
            0)
      << error;
  EXPECT_NE(out.find("regressions above noise: 0"), std::string::npos);
}

TEST(DiffCli, RegressionsDriveExitCodeThree) {
  const DiffFiles files = WriteDiffFiles();
  std::string error, out;
  const int rc = RunDiffCli(
      {files.a_text.c_str(), files.b_text.c_str(), files.names.c_str()}, &error, &out);
  EXPECT_EQ(rc, 3) << error;
  EXPECT_NE(out.find("[REGRESSED]"), std::string::npos);
}

TEST(DiffCli, OutputIsByteIdenticalAcrossJobsAndFormats) {
  const DiffFiles files = WriteDiffFiles();
  std::string error, base;
  const int rc = RunDiffCli({files.a_text.c_str(), files.b_text.c_str(),
                             files.names.c_str(), "--noise-pct", "1"},
                            &error, &base);
  EXPECT_EQ(rc, 3) << error;
  ASSERT_FALSE(base.empty());

  struct Variant {
    const char* what;
    const std::string* a;
    const std::string* b;
    const char* jobs;  // nullptr = serial default
  };
  const Variant variants[] = {
      {"text jobs=1", &files.a_text, &files.b_text, "1"},
      {"text jobs=2", &files.a_text, &files.b_text, "2"},
      {"text jobs=8", &files.a_text, &files.b_text, "8"},
      {"binary serial", &files.a_binary, &files.b_binary, nullptr},
      {"binary jobs=8", &files.a_binary, &files.b_binary, "8"},
      {"mixed text/binary", &files.a_text, &files.b_binary, nullptr},
  };
  for (const Variant& v : variants) {
    std::string out;
    std::vector<const char*> args{v.a->c_str(), v.b->c_str(), files.names.c_str(),
                                  "--noise-pct", "1"};
    if (v.jobs != nullptr) {
      args.push_back("--jobs");
      args.push_back(v.jobs);
    }
    std::vector<const char*> argv{"hwprof_analyze", "--diff"};
    argv.insert(argv.end(), args.begin(), args.end());
    ::testing::internal::CaptureStdout();
    const int vrc = AnalyzeMain(static_cast<int>(argv.size()), argv.data(), &error);
    out = ::testing::internal::GetCapturedStdout();
    EXPECT_EQ(vrc, 3) << v.what << ": " << error;
    EXPECT_EQ(out, base) << v.what;
  }
}

TEST(DiffCli, JsonReportMirrorsTheExitCode) {
  const DiffFiles files = WriteDiffFiles();
  std::string error, out;
  const int rc = RunDiffCli({files.a_text.c_str(), files.b_text.c_str(),
                             files.names.c_str(), "--json"},
                            &error, &out);
  EXPECT_EQ(rc, 3) << error;
  EXPECT_NE(out.find("\"functions\": ["), std::string::npos);
  EXPECT_NE(out.find("\"status\": \"regressed\""), std::string::npos);
  EXPECT_EQ(out.find("\"regressions\": 0"), std::string::npos);

  // The JSON twin is also byte-stable across decode paths.
  std::string parallel_out;
  EXPECT_EQ(RunDiffCli({files.a_binary.c_str(), files.b_binary.c_str(),
                        files.names.c_str(), "--json", "--jobs", "8"},
                       &error, &parallel_out),
            3)
      << error;
  EXPECT_EQ(parallel_out, out);
}

TEST(DiffCli, UsageAndLoadErrors) {
  const DiffFiles files = WriteDiffFiles();
  std::string error, out;
  EXPECT_EQ(RunDiffCli({files.a_text.c_str()}, &error, &out), 2);  // too few args
  EXPECT_NE(error.find("usage"), std::string::npos);

  error.clear();
  EXPECT_EQ(RunDiffCli({files.a_text.c_str(), files.b_text.c_str(),
                        files.names.c_str(), "--noise-pct", "-3"},
                       &error, &out),
            2);
  EXPECT_NE(error.find("non-negative"), std::string::npos);

  error.clear();
  EXPECT_EQ(RunDiffCli({"/nonexistent.hwprof", files.b_text.c_str(),
                        files.names.c_str()},
                       &error, &out),
            1);
  EXPECT_FALSE(error.empty());
}

TEST(DiffCli, QuantumAndGateOptionsParseAndValidate) {
  const DiffFiles files = WriteDiffFiles();
  std::string error, out;

  // --gate net + a huge quantum floor: every changed row on both sides is
  // within the floor, new-in-candidate *function* rows (if any) would still
  // gate, but FuzzTrace pairs share the name set, so the diff passes.
  const int rc = RunDiffCli(
      {files.a_text.c_str(), files.b_text.c_str(), files.names.c_str(),
       "--quantum-us", "1000000", "--gate", "net"},
      &error, &out);
  EXPECT_EQ(rc, 0) << error;
  EXPECT_NE(out.find("quantum floor: 1000000.00 us/call"), std::string::npos);
  EXPECT_NE(out.find("(advisory)"), std::string::npos);

  error.clear();
  EXPECT_EQ(RunDiffCli({files.a_text.c_str(), files.b_text.c_str(),
                        files.names.c_str(), "--quantum-us", "-1"},
                       &error, &out),
            2);
  EXPECT_NE(error.find("non-negative"), std::string::npos);

  error.clear();
  EXPECT_EQ(RunDiffCli({files.a_text.c_str(), files.b_text.c_str(),
                        files.names.c_str(), "--gate", "edges"},
                       &error, &out),
            2);
  EXPECT_NE(error.find("--gate must be all or net"), std::string::npos);
}

// --- CallGraph / Grouping units the diff is built on -------------------------------

TEST(CallGraph, CallersOfOrdersHeaviestFirst) {
  // Three callers of d with elapsed 90, 40 and 10 us.
  const RawTrace raw = Trace({{100, 0},  {106, 10}, {107, 100}, {101, 110},
                              {102, 120}, {106, 130}, {107, 170}, {103, 180},
                              {104, 190}, {106, 200}, {107, 210}, {105, 220}});
  const DecodedTrace d = Decoder::Decode(raw, MakeNames());
  const CallGraph graph(d);
  const auto callers = graph.CallersOf("d");
  ASSERT_EQ(callers.size(), 3u);
  EXPECT_EQ(callers[0]->caller, "a");
  EXPECT_EQ(callers[1]->caller, "b");
  EXPECT_EQ(callers[2]->caller, "c");
  EXPECT_GT(callers[0]->callee_elapsed, callers[1]->callee_elapsed);
  EXPECT_GT(callers[1]->callee_elapsed, callers[2]->callee_elapsed);
}

TEST(CallGraph, TopOfBlockFunctionsAreSpontaneous) {
  const DecodedTrace d = Decoder::Decode(BaselineTrace(), MakeNames());
  const CallGraph graph(d);
  ASSERT_NE(graph.Edge(kSpontaneous, "a"), nullptr);
  ASSERT_NE(graph.Edge(kSpontaneous, "c"), nullptr);
  EXPECT_EQ(graph.Edge(kSpontaneous, "b"), nullptr);  // only ever nested
}

TEST(Grouping, UnmappedFunctionsLandInOther) {
  const DecodedTrace d = Decoder::Decode(BaselineTrace(), MakeNames());
  const Grouping grouping(d, {{"a", "alpha"}});
  const GroupRow* alpha = grouping.Row("alpha");
  ASSERT_NE(alpha, nullptr);
  EXPECT_EQ(alpha->net_us, 70u);
  const GroupRow* other = grouping.Row("other");
  ASSERT_NE(other, nullptr);
  EXPECT_EQ(other->net_us, 130u);  // b (30) + c (100)
  EXPECT_EQ(other->calls, 2u);
}

TEST(Grouping, ContextSwitchTimeIsExcluded) {
  const RawTrace raw =
      Trace({{100, 0}, {101, 50}, {200, 60}, {201, 560}, {100, 600}, {101, 650}});
  const DecodedTrace d = Decoder::Decode(raw, MakeNames());
  // Even an explicit mapping cannot pull idle time into an abstraction.
  const Grouping grouping(d, {{"swtch", "sched"}});
  EXPECT_EQ(grouping.Row("sched"), nullptr);
  const GroupRow* other = grouping.Row("other");
  ASSERT_NE(other, nullptr);
  EXPECT_EQ(other->net_us, 100u);  // a's two 50 us runs, no idle
}

TEST(Grouping, SplGroupCollectsSplPrefixedFunctions) {
  TagFile names;
  ASSERT_TRUE(TagFile::Parse("splnet/400\nsplx/402\nwork/404\n", &names));
  const RawTrace raw =
      Trace({{400, 0}, {401, 5}, {404, 10}, {402, 15}, {403, 18}, {405, 30}});
  const DecodedTrace d = Decoder::Decode(raw, names);
  const Grouping grouping(d, Grouping::SplGroup(d));
  const GroupRow* spl = grouping.Row("spl*");
  ASSERT_NE(spl, nullptr);
  EXPECT_EQ(spl->net_us, 8u);   // splnet (5) + splx (3)
  EXPECT_EQ(spl->calls, 2u);
  const GroupRow* other = grouping.Row("other");
  ASSERT_NE(other, nullptr);
  EXPECT_EQ(other->net_us, 17u);  // work's 20 us elapsed minus splx's 3
}

}  // namespace
}  // namespace hwprof
