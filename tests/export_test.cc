// hwprof_export / src/analysis/export: trace-event JSON and folded-stack
// renderings. Locks in (a) schema validity of the net-receive export, (b)
// byte-identity across --jobs (the serial/parallel decode contract carried
// through to the export layer), (c) exact agreement between slice
// accumulators recovered from the JSON text and the decoder's per-function
// totals / the Figure-3 summary, (d) anomaly instant events matching a
// fault-injected capture's typed counters, and (e) small committed goldens
// for both formats plus the hwprof_export CLI end to end.

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "src/analysis/decoder.h"
#include "src/analysis/export.h"
#include "src/analysis/parallel.h"
#include "src/analysis/summary.h"
#include "src/obs/telemetry.h"
#include "src/profhw/fault_injection.h"
#include "src/profhw/smart_socket.h"
#include "src/workloads/testbed.h"
#include "src/workloads/workloads.h"
#include "tests/trace_testutil.h"
#include "tools/export_main.h"

namespace hwprof {
namespace {

std::string GoldenPath(const std::string& name) {
  return std::string(HWPROF_TEST_DIR) + "/golden/" + name;
}

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

void CheckGolden(const std::string& name, const std::string& actual) {
  const std::string path = GoldenPath(name);
  if (std::getenv("HWPROF_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << actual;
    ASSERT_TRUE(out.good()) << "write to " << path << " failed";
    GTEST_SKIP() << "regenerated " << name;
  }
  std::string expected;
  ASSERT_TRUE(ReadFile(path, &expected))
      << path << " is missing; run with HWPROF_REGEN_GOLDEN=1 to create it";
  EXPECT_EQ(actual, expected)
      << name << " drifted; if the change is intentional, regenerate with "
      << "HWPROF_REGEN_GOLDEN=1";
}

// The golden net-receive capture (same parameters as golden_test's
// ReferenceDecode), decoded serially and with the parallel engine at 1 and
// 8 workers. The testbed outlives the decodes: they point into its TagFile.
struct NetReceive {
  Testbed tb;
  RawTrace raw;
  DecodedTrace serial;
  DecodedTrace jobs1;
  DecodedTrace jobs8;
};

NetReceive& NetReceiveDecode() {
  static NetReceive* decoded = [] {
    auto* d = new NetReceive();
    d->tb.Arm();
    RunNetworkReceive(d->tb, Sec(2), 128 * 1024, false);
    d->raw = d->tb.StopAndUpload();
    d->serial = Decoder::Decode(d->raw, d->tb.tags());
    d->jobs1 = DecodeParallel(d->raw, d->tb.tags(), ParallelOptions{.jobs = 1});
    d->jobs8 = DecodeParallel(d->raw, d->tb.tags(),
                              ParallelOptions{.jobs = 8, .shard_target_ops = 512});
    return d;
  }();
  return *decoded;
}

TEST(Export, NetReceiveTraceEventJsonIsValid) {
  const std::string json = ExportTraceEventJson(NetReceiveDecode().serial);
  std::string error;
  ASSERT_TRUE(ValidateTraceEventJson(json, &error)) << error;
  TraceEventTotals totals;
  ASSERT_TRUE(SummarizeTraceEventJson(json, &totals, &error)) << error;
  EXPECT_GT(totals.slices, 100u);
  EXPECT_GT(totals.counter_samples, 0u);
}

TEST(Export, ByteIdenticalAcrossJobs) {
  const NetReceive& d = NetReceiveDecode();
  const std::string json = ExportTraceEventJson(d.serial);
  EXPECT_EQ(ExportTraceEventJson(d.jobs1), json)
      << "--jobs 1 export diverged from serial";
  EXPECT_EQ(ExportTraceEventJson(d.jobs8), json)
      << "--jobs 8 export diverged from serial";
  const std::string folded = ExportFoldedStacks(d.serial);
  EXPECT_EQ(ExportFoldedStacks(d.jobs1), folded);
  EXPECT_EQ(ExportFoldedStacks(d.jobs8), folded);
}

TEST(Export, SliceTotalsMatchDecoderAndSummary) {
  const DecodedTrace& decoded = NetReceiveDecode().serial;
  const std::string json = ExportTraceEventJson(decoded);
  TraceEventTotals totals;
  std::string error;
  ASSERT_TRUE(SummarizeTraceEventJson(json, &totals, &error)) << error;

  // Every per-function accumulator recovered from the JSON text must equal
  // the decoder's, nanosecond for nanosecond, and cover every function.
  ASSERT_EQ(totals.net_ns.size(), decoded.per_function.size());
  for (const auto& [name, stats] : decoded.per_function) {
    ASSERT_TRUE(totals.net_ns.count(name)) << name << " missing from export";
    EXPECT_EQ(totals.net_ns.at(name), stats.net) << name;
    EXPECT_EQ(totals.elapsed_ns.at(name), stats.elapsed) << name;
  }

  // And therefore the Figure-3 summary rows agree (whole microseconds).
  const Summary summary(decoded);
  for (const SummaryRow& row : summary.rows()) {
    EXPECT_EQ(row.net_us, totals.net_ns.at(row.name) / 1000) << row.name;
    EXPECT_EQ(row.elapsed_us, totals.elapsed_ns.at(row.name) / 1000) << row.name;
  }
}

TEST(Export, FoldedStacksSumToDecoderNetTotal) {
  const DecodedTrace& decoded = NetReceiveDecode().serial;
  const std::string folded = ExportFoldedStacks(decoded);
  std::uint64_t folded_total = 0;
  std::istringstream lines(folded);
  std::string line;
  std::size_t line_count = 0;
  while (std::getline(lines, line)) {
    ++line_count;
    const std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    ASSERT_EQ(line.rfind("context ", 0), 0u) << line;
    folded_total += std::strtoull(line.c_str() + space + 1, nullptr, 10);
  }
  EXPECT_GT(line_count, 10u);
  std::uint64_t decoder_total = 0;
  for (const auto& [name, stats] : decoded.per_function) {
    decoder_total += stats.net;
  }
  EXPECT_EQ(folded_total, decoder_total);
}

// Satellite (c): a fault-injected capture round-tripped through the export
// must carry anomaly instant events that match the DecodedTrace's typed
// counters exactly — no anomaly may be lost or invented by the renderer.
TEST(Export, FaultInjectedAnomalyInstantsMatchCounters) {
  for (std::uint64_t seed : {3u, 11u, 29u, 42u}) {
    const RawTrace clean = FuzzTrace(seed, 600);
    const FaultPlan plan = FaultPlan::FromSeed(seed * 977 + 5);
    const RawTrace faulty = InjectFaults(clean, plan, nullptr);

    StreamingDecoder decoder(MakeNames(), faulty.timer_bits,
                             faulty.timer_clock_hz,
                             StreamingOptions{.retain_structure = true});
    decoder.NoteDropped(faulty.dropped_events);
    decoder.SetClockEnvelope(faulty.capture_elapsed_ns);
    decoder.Feed(faulty.events);
    const DecodedTrace decoded = decoder.Finish(faulty.overflowed);

    const std::string json = ExportTraceEventJson(decoded);
    std::string error;
    ASSERT_TRUE(ValidateTraceEventJson(json, &error)) << "seed " << seed
                                                      << ": " << error;
    TraceEventTotals totals;
    ASSERT_TRUE(SummarizeTraceEventJson(json, &totals, &error)) << error;

    std::map<std::string, std::uint64_t> expected;
    auto want = [&expected](const char* name, std::uint64_t v) {
      if (v > 0) {
        expected[name] = v;  // zero counters emit no instant event
      }
    };
    want("corrupt_words", decoded.corrupt_words);
    want("impossible_deltas", decoded.impossible_deltas);
    want("wrap_ambiguous_gaps", decoded.wrap_ambiguous_gaps);
    want("unknown_tags", decoded.unknown_tags);
    want("orphan_exits", decoded.orphan_exits);
    want("dropped_events", decoded.dropped_events);
    want("capture_gaps", decoded.capture_gaps);
    want("mid_trace_unclosed_entries", decoded.MidTraceUnclosedEntries());
    EXPECT_EQ(totals.anomaly_counts, expected) << "seed " << seed;
  }
}

// The capture and names behind the Fig-3/Fig-4 goldens are themselves
// committed (tests/golden/net_receive.{capture,names}) so CI's
// export-goldens job can drive the hwprof_export binary + trace_event_check
// against real files. This test pins them: the committed pair must decode
// and export byte-identically to the in-memory reference.
TEST(Export, CommittedNetReceiveCaptureIsCurrent) {
  const NetReceive& d = NetReceiveDecode();
  const std::string capture_path = GoldenPath("net_receive.capture");
  const std::string names_path = GoldenPath("net_receive.names");
  if (std::getenv("HWPROF_REGEN_GOLDEN") != nullptr) {
    ASSERT_TRUE(SaveCapture(d.raw, capture_path));
    std::ofstream names_out(names_path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(names_out.good());
    names_out << NetReceiveDecode().tb.tags().Format();
    ASSERT_TRUE(names_out.good());
    GTEST_SKIP() << "regenerated net_receive capture/names";
  }
  RawTrace loaded;
  ASSERT_TRUE(LoadCapture(capture_path, &loaded))
      << capture_path << " is missing; run with HWPROF_REGEN_GOLDEN=1";
  std::string names_text;
  ASSERT_TRUE(ReadFile(names_path, &names_text));
  TagFile names;
  ASSERT_TRUE(TagFile::Parse(names_text, &names));
  const DecodedTrace decoded = Decoder::Decode(loaded, names);
  EXPECT_EQ(ExportTraceEventJson(decoded), ExportTraceEventJson(d.serial))
      << "committed capture/names drifted from the live workload; "
      << "regenerate with HWPROF_REGEN_GOLDEN=1";
}

// A small hand-built trace with one of everything: nesting, an inline
// marker, a context switch (idle), an unknown tag and an orphan exit.
// Committed goldens pin both renderings byte for byte.
DecodedTrace SmallDecode() {
  const RawTrace raw = Trace({
      {100, 10},    // a enters
      {102, 20},    // b enters
      {300, 25},    // MARK inline marker
      {103, 40},    // b exits
      {200, 50},    // swtch enters (idle)
      {201, 90},    // swtch exits
      {999, 95},    // unknown tag
      {105, 100},   // orphan exit (c never entered)
      {101, 120},   // a exits
  });
  return Decoder::Decode(raw, MakeNames());
}

TEST(Export, GoldenTraceEventJson) {
  const std::string json = ExportTraceEventJson(SmallDecode());
  std::string error;
  ASSERT_TRUE(ValidateTraceEventJson(json, &error)) << error;
  CheckGolden("small_export.json", json);
}

TEST(Export, GoldenFoldedStacks) {
  CheckGolden("small_export.folded", ExportFoldedStacks(SmallDecode()));
}

// --- the hwprof_export CLI ---------------------------------------------------

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/export_test_" + name;
}

void WriteNamesFile(const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  ASSERT_TRUE(out.good());
  out << "a/100\nb/102\nc/104\nd/106\nswtch/200!\nidle_swtch/202!\n"
         "MARK/300=\nPOINT/302=\n";
  ASSERT_TRUE(out.good());
}

int RunExport(const std::vector<std::string>& args, std::string* error) {
  std::vector<const char*> argv = {"hwprof_export"};
  for (const std::string& a : args) {
    argv.push_back(a.c_str());
  }
  return ExportMain(static_cast<int>(argv.size()), argv.data(), error);
}

TEST(ExportCli, TraceEventIdenticalAcrossJobsAndValid) {
  const std::string capture = TempPath("capture.hwprof");
  const std::string names = TempPath("kernel.names");
  WriteNamesFile(names);
  ASSERT_TRUE(SaveCapture(FuzzTrace(7, 400), capture));

  const std::string out1 = TempPath("out_jobs1.json");
  const std::string out8 = TempPath("out_jobs8.json");
  std::string error;
  ASSERT_EQ(RunExport({capture, names, "--jobs", "1", "--out", out1}, &error), 0)
      << error;
  ASSERT_EQ(RunExport({capture, names, "--jobs", "8", "--out", out8}, &error), 0)
      << error;
  std::string json1, json8;
  ASSERT_TRUE(ReadFile(out1, &json1));
  ASSERT_TRUE(ReadFile(out8, &json8));
  EXPECT_EQ(json1, json8) << "hwprof_export output must not depend on --jobs";
  ASSERT_TRUE(ValidateTraceEventJson(json1, &error)) << error;
}

TEST(ExportCli, FoldedFormatAndErrors) {
  const std::string capture = TempPath("capture2.hwprof");
  const std::string names = TempPath("kernel2.names");
  WriteNamesFile(names);
  ASSERT_TRUE(SaveCapture(FuzzTrace(8, 200), capture));

  const std::string out = TempPath("out.folded");
  std::string error;
  ASSERT_EQ(RunExport({capture, names, "--format", "folded", "--out", out},
                      &error),
            0)
      << error;
  std::string folded;
  ASSERT_TRUE(ReadFile(out, &folded));
  EXPECT_EQ(folded.rfind("context ", 0), 0u) << folded.substr(0, 40);

  // Missing capture file and bad flags are reported, not crashed on.
  EXPECT_NE(RunExport({TempPath("nope.hwprof"), names}, &error), 0);
  EXPECT_FALSE(error.empty());
  error.clear();
  EXPECT_NE(RunExport({capture, names, "--format", "bogus"}, &error), 0);
  EXPECT_FALSE(error.empty());
}

TEST(ExportCli, TelemetryTracksAreByteIdenticalAcrossJobs) {
  const std::string capture = TempPath("capture_tel.hwprof");
  const std::string names = TempPath("kernel_tel.names");
  WriteNamesFile(names);
  ASSERT_TRUE(SaveCapture(FuzzTrace(9, 400), capture));

  // The registry is process-global; reset before each run so the rendered
  // counts reflect exactly one decode, the way a fresh CLI process sees
  // them. The allowlisted counters (decode.anomaly.*, decode.finishes,
  // socket.*) are recorded identically by both engines, so the --telemetry
  // export must stay byte-identical at every --jobs.
  const std::string out1 = TempPath("out_tel_jobs1.json");
  const std::string out8 = TempPath("out_tel_jobs8.json");
  std::string error;
  obs::SetEnabled(true);
  obs::ResetTelemetry();
  ASSERT_EQ(RunExport({capture, names, "--telemetry", "--jobs", "1", "--out",
                       out1},
                      &error),
            0)
      << error;
  obs::ResetTelemetry();
  ASSERT_EQ(RunExport({capture, names, "--telemetry", "--jobs", "8", "--out",
                       out8},
                      &error),
            0)
      << error;
  std::string json1, json8;
  ASSERT_TRUE(ReadFile(out1, &json1));
  ASSERT_TRUE(ReadFile(out8, &json8));
  EXPECT_EQ(json1, json8)
      << "--telemetry counter tracks must not depend on --jobs";
  ASSERT_TRUE(ValidateTraceEventJson(json1, &error)) << error;
  EXPECT_NE(json1.find("\"telemetry: decode.finishes\""), std::string::npos);
  EXPECT_NE(json1.find("\"ph\":\"C\""), std::string::npos);
  // Engine-internal counters must NOT leak into the export.
  EXPECT_EQ(json1.find("telemetry: parallel."), std::string::npos);
  EXPECT_EQ(json1.find("telemetry: export."), std::string::npos);

  // --telemetry is a trace-event feature; folded rejects it.
  EXPECT_NE(RunExport({capture, names, "--format", "folded", "--telemetry"},
                      &error),
            0);
  EXPECT_NE(error.find("--telemetry"), std::string::npos);
}

}  // namespace
}  // namespace hwprof
