// Differential fuzz suite for the hardened capture→decode pipeline: every
// fault-injected capture (bit flips, drops, duplicates, stuck
// address-counter runs, timer glitches, truncated drains — and text-level
// corruption of the upload file) must decode to byte-identical observables
// — including the typed anomaly counters — across the serial decoder, the
// chunk-fed streaming decoder, and the parallel sharded engine at several
// worker counts and shard sizes. No injected fault may crash any path.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/analysis/decoder.h"
#include "src/analysis/parallel.h"
#include "src/analysis/summary.h"
#include "src/analysis/process_report.h"
#include "src/base/rng.h"
#include "src/profhw/fault_injection.h"
#include "src/profhw/raw_trace.h"
#include "src/profhw/usec_timer.h"
#include "tests/trace_testutil.h"

namespace hwprof {
namespace {

// Mirrors the batch wrappers with salvage corrupt-word injection: what
// hwprof_analyze --salvage runs.
DecodedTrace DecodeSerial(const RawTrace& raw, const TagFile& names,
                          std::uint64_t corrupt_words) {
  StreamingDecoder decoder(names, raw.timer_bits, raw.timer_clock_hz,
                           StreamingOptions{.retain_structure = true});
  decoder.NoteCorruptWords(corrupt_words);
  decoder.NoteDropped(raw.dropped_events);
  decoder.SetClockEnvelope(raw.capture_elapsed_ns);
  decoder.Feed(raw.events);
  return decoder.Finish(raw.overflowed);
}

// Chunk-fed streaming decode with a seeded random chunking.
DecodedTrace DecodeChunked(const RawTrace& raw, const TagFile& names,
                           std::uint64_t corrupt_words, std::uint64_t chunk_seed) {
  Rng rng(chunk_seed);
  StreamingDecoder decoder(names, raw.timer_bits, raw.timer_clock_hz,
                           StreamingOptions{.retain_structure = true});
  decoder.NoteCorruptWords(corrupt_words);
  decoder.NoteDropped(raw.dropped_events);
  decoder.SetClockEnvelope(raw.capture_elapsed_ns);
  std::size_t at = 0;
  while (at < raw.events.size()) {
    const std::size_t n =
        std::min(raw.events.size() - at, std::size_t{1} + rng.NextBelow(97));
    decoder.Feed(raw.events.data() + at, n);
    at += n;
  }
  return decoder.Finish(raw.overflowed);
}

DecodedTrace DecodeParallelJobs(const RawTrace& raw, const TagFile& names,
                                std::uint64_t corrupt_words, unsigned jobs,
                                std::size_t shard_target) {
  ParallelOptions opts;
  opts.jobs = jobs;
  opts.shard_target_ops = shard_target;
  ParallelAnalyzer analyzer(names, raw.timer_bits, raw.timer_clock_hz, opts);
  analyzer.NoteCorruptWords(corrupt_words);
  analyzer.NoteDropped(raw.dropped_events);
  analyzer.SetClockEnvelope(raw.capture_elapsed_ns);
  analyzer.Feed(raw.events);
  return analyzer.Finish(raw.overflowed);
}

// The tentpole contract: anomaly counts and every other observable are
// byte-identical across serial, streaming, and parallel (--jobs N) paths.
void ExpectAllPathsAgree(const RawTrace& raw, const TagFile& names,
                         std::uint64_t corrupt_words, const std::string& what) {
  const std::string serial = Fingerprint(DecodeSerial(raw, names, corrupt_words));
  for (std::uint64_t chunk_seed : {1u, 77u}) {
    ASSERT_EQ(Fingerprint(DecodeChunked(raw, names, corrupt_words, chunk_seed)),
              serial)
        << what << " chunk_seed=" << chunk_seed;
  }
  for (unsigned jobs : {1u, 2u, 8u}) {
    for (std::size_t target : {std::size_t{1}, std::size_t{64}}) {
      ASSERT_EQ(
          Fingerprint(DecodeParallelJobs(raw, names, corrupt_words, jobs, target)),
          serial)
          << what << " jobs=" << jobs << " shard_target_ops=" << target;
    }
  }
}

class FaultPlanFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FaultPlanFuzzTest, FaultedCaptureDecodesIdenticallyOnEveryPath) {
  const std::uint64_t seed = GetParam();
  const TagFile& names = MakeNames();
  const RawTrace clean = FuzzTrace(seed, 600);
  FaultLog log;
  RawTrace faulty = InjectFaults(clean, FaultPlan::FromSeed(seed), &log);
  // Some seeds also carry board-side drop counts and a host wall-clock
  // envelope wide enough to hide whole timer wraps.
  if (seed % 3 == 0) {
    faulty.capture_elapsed_ns = 40'000'000'000ull;  // > 2 wraps at 24b/1MHz
  }
  if (seed % 4 == 1) {
    faulty.dropped_events = 1 + seed % 17;
  }
  ExpectAllPathsAgree(faulty, names, /*corrupt_words=*/0,
                      "fault seed " + std::to_string(seed));
}

TEST_P(FaultPlanFuzzTest, CorruptedUploadTextSalvagesIdenticallyOnEveryPath) {
  const std::uint64_t seed = GetParam();
  const TagFile& names = MakeNames();
  const RawTrace clean = FuzzTrace(seed + 1000, 300);
  const std::string corrupted = CorruptCaptureText(clean.Serialize(), seed);

  // Strict load: either the damage missed every parsed field (load
  // succeeds), or it must be reported with 1-based line diagnostics.
  RawTrace strict;
  std::vector<TraceDiag> diags;
  if (!RawTrace::Deserialize(corrupted, &strict, &diags)) {
    ASSERT_FALSE(diags.empty()) << "failure without a diagnostic";
    for (const TraceDiag& d : diags) {
      EXPECT_GT(d.line, 0);
      EXPECT_FALSE(d.message.empty());
    }
  }

  // Salvage load: the header survives CorruptCaptureText by construction,
  // so salvage must always succeed, counting each unreadable line.
  RawTrace salvaged;
  std::vector<TraceDiag> salvage_diags;
  std::uint64_t corrupt_words = 0;
  ASSERT_TRUE(RawTrace::DeserializeSalvage(corrupted, &salvaged, &salvage_diags,
                                           &corrupt_words))
      << "seed " << seed;
  EXPECT_EQ(corrupt_words, salvage_diags.size());
  ExpectAllPathsAgree(salvaged, names, corrupt_words,
                      "salvage seed " + std::to_string(seed));
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultPlanFuzzTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u, 9u,
                                           10u, 11u, 12u, 13u, 14u, 15u, 16u,
                                           17u, 18u, 19u, 20u, 42u, 97u, 1993u,
                                           65537u));

// --- Fault plan mechanics ----------------------------------------------------

TEST(FaultInjection, InjectionIsDeterministicForASeed) {
  const RawTrace clean = FuzzTrace(5, 400);
  const FaultPlan plan = FaultPlan::FromSeed(5);
  FaultLog a;
  FaultLog b;
  const RawTrace one = InjectFaults(clean, plan, &a);
  const RawTrace two = InjectFaults(clean, plan, &b);
  EXPECT_EQ(one.events, two.events);
  EXPECT_EQ(a.TotalFaults(), b.TotalFaults());
}

TEST(FaultInjection, TruncationMarksTheCaptureOverflowed) {
  const RawTrace clean = FuzzTrace(3, 400);
  FaultPlan plan;
  plan.seed = 9;
  plan.truncate_probability = 1.0;
  FaultLog log;
  const RawTrace faulty = InjectFaults(clean, plan, &log);
  if (log.truncated) {
    EXPECT_TRUE(faulty.overflowed);
    EXPECT_LT(faulty.events.size(), clean.events.size());
    EXPECT_EQ(clean.events.size() - faulty.events.size(), log.truncated_events);
  }
}

TEST(FaultInjection, DropsShrinkAndDuplicatesGrowTheCapture) {
  const RawTrace clean = FuzzTrace(11, 500);
  FaultPlan drop_plan;
  drop_plan.seed = 21;
  drop_plan.drop_rate = 0.2;
  FaultLog drop_log;
  const RawTrace dropped = InjectFaults(clean, drop_plan, &drop_log);
  EXPECT_EQ(clean.events.size() - dropped.events.size(), drop_log.dropped);
  EXPECT_GT(drop_log.dropped, 0u);

  FaultPlan dup_plan;
  dup_plan.seed = 22;
  dup_plan.duplicate_rate = 0.2;
  FaultLog dup_log;
  const RawTrace duplicated = InjectFaults(clean, dup_plan, &dup_log);
  EXPECT_EQ(duplicated.events.size() - clean.events.size(), dup_log.duplicated);
  EXPECT_GT(dup_log.duplicated, 0u);
}

// --- Typed anomaly accounting ------------------------------------------------

TEST(SalvageDecode, ImpossibleDeltasAreMaskedAndCounted) {
  const TagFile& names = MakeNames();
  RawTrace raw = Trace({{100, 10}, {101, 60}});
  raw.events.push_back({100, (1u << 24) | 70u});  // beyond the 24-bit mask
  raw.events.push_back({101, 90});
  const DecodedTrace d = Decoder::Decode(raw, names);
  EXPECT_EQ(d.impossible_deltas, 1u);
  EXPECT_TRUE(d.HasAnomalies());
  // Masking recovers the low bits: decode matches the pre-corruption trace
  // everywhere except the anomaly counter.
  RawTrace fixed = raw;
  fixed.events[2].timestamp &= (1u << 24) - 1;
  const DecodedTrace df = Decoder::Decode(fixed, names);
  EXPECT_EQ(d.event_count, df.event_count);
  EXPECT_EQ(d.end_time, df.end_time);
  EXPECT_EQ(df.impossible_deltas, 0u);
}

TEST(SalvageDecode, QuietGapBeyondOneWrapIsFlaggedByTheEnvelope) {
  const TagFile& names = MakeNames();
  RawTrace raw = Trace({{100, 0}, {101, 1000}});
  const UsecTimer timer(raw.timer_bits, raw.timer_clock_hz);
  const Nanoseconds span = timer.TicksToNs(1000);

  // Envelope within one wrap of the reconstructed span: no ambiguity.
  raw.capture_elapsed_ns =
      static_cast<std::uint64_t>(span + timer.WrapPeriod() / 2);
  const DecodedTrace ok = Decoder::Decode(raw, names);
  EXPECT_EQ(ok.wrap_ambiguous_gaps, 0u);
  EXPECT_EQ(ok.unaccounted_time, 0);
  EXPECT_FALSE(ok.HasAnomalies());

  // Envelope exceeding the span by 2+ wraps: both missing wraps are counted
  // and the missing wall-clock time is reported.
  raw.capture_elapsed_ns =
      static_cast<std::uint64_t>(span + 2 * timer.WrapPeriod() + 12345);
  const DecodedTrace bad = Decoder::Decode(raw, names);
  EXPECT_EQ(bad.wrap_ambiguous_gaps, 2u);
  EXPECT_EQ(bad.unaccounted_time,
            static_cast<Nanoseconds>(raw.capture_elapsed_ns) - span);
  EXPECT_TRUE(bad.HasAnomalies());
}

TEST(SalvageDecode, CleanTruncatedCaptureHasNoAnomalies) {
  // Plain truncation (the board stopping mid-run) is normal operation, not
  // an anomaly: the summary footer must not appear for it.
  const TagFile& names = MakeNames();
  RawTrace raw = Trace({{100, 0}, {102, 10}});
  raw.overflowed = true;
  const DecodedTrace d = Decoder::Decode(raw, names);
  EXPECT_TRUE(d.truncated);
  EXPECT_EQ(d.unclosed_entries, 2u);
  EXPECT_EQ(d.MidTraceUnclosedEntries(), 0u);
  EXPECT_FALSE(d.HasAnomalies());
  EXPECT_EQ(Summary(d).Format(0).find("Capture anomalies"), std::string::npos);
}

TEST(SalvageDecode, AnomalyFooterListsTheTypedCounts) {
  const TagFile& names = MakeNames();
  RawTrace raw = Trace({{100, 10}, {999, 20}, {105, 30}, {101, 40}});
  StreamingDecoder decoder(names, raw.timer_bits, raw.timer_clock_hz,
                           StreamingOptions{.retain_structure = true});
  decoder.NoteCorruptWords(3);
  decoder.Feed(raw.events);
  const DecodedTrace d = decoder.Finish(false);
  EXPECT_EQ(d.corrupt_words, 3u);
  EXPECT_EQ(d.unknown_tags, 1u);
  EXPECT_EQ(d.orphan_exits, 1u);
  ASSERT_TRUE(d.HasAnomalies());

  const std::string summary = Summary(d).Format(0);
  EXPECT_NE(summary.find("Capture anomalies"), std::string::npos);
  EXPECT_NE(summary.find("corrupt words"), std::string::npos);
  EXPECT_NE(summary.find("unknown tags"), std::string::npos);
  EXPECT_NE(summary.find("orphan exits"), std::string::npos);

  const std::string processes = ProcessReport(d).Format(d);
  EXPECT_NE(processes.find("capture anomalies:"), std::string::npos);
  EXPECT_NE(processes.find("3 corrupt words"), std::string::npos);
}

TEST(SalvageDecode, DroppedEventsFromTheBoardHeaderAreCounted) {
  const TagFile& names = MakeNames();
  RawTrace raw = Trace({{100, 10}, {101, 60}});
  raw.dropped_events = 7;
  const DecodedTrace d = Decoder::Decode(raw, names);
  EXPECT_EQ(d.dropped_events, 7u);
  EXPECT_EQ(d.capture_gaps, 1u);
  EXPECT_TRUE(d.HasAnomalies());
}

}  // namespace
}  // namespace hwprof
