// Filesystem fuzz: random operation sequences checked against an in-memory
// reference model — contents, sizes, and directory structure must agree at
// every step, across cache evictions and async write-back.

#include <gtest/gtest.h>

#include <map>

#include "src/base/rng.h"
#include "src/kern/fs.h"
#include "src/kern/user_env.h"
#include "src/workloads/testbed.h"
#include "src/workloads/workloads.h"

namespace hwprof {
namespace {

class FsFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FsFuzzTest, RandomOpsMatchReferenceModel) {
  Testbed tb;
  Kernel& k = tb.kernel();
  bool done = false;

  k.Spawn("fuzzer", [&](UserEnv& env) {
    Rng rng(GetParam());
    std::map<std::string, Bytes> model;  // path -> contents
    const std::vector<std::string> names{"/a", "/b", "/dir/c", "/dir/d", "/dir/sub/e"};
    k.fs().Mkdir("/dir");
    k.fs().Mkdir("/dir/sub");

    for (int step = 0; step < 120 && !k.stopping(); ++step) {
      const std::string& path = names[rng.NextBelow(names.size())];
      const int op = static_cast<int>(rng.NextBelow(3));
      if (op == 0) {
        // Write through open(O_CREAT)+write: overwrites from offset 0
        // without truncation (classic UNIX semantics).
        const std::size_t n = 1 + rng.NextBelow(3 * kFsBlockBytes);
        const Bytes data = PatternBytes(n, static_cast<std::uint8_t>(step));
        const int fd = env.Open(path, /*create=*/true);
        ASSERT_GE(fd, 0) << path;
        ASSERT_EQ(env.Write(fd, data), static_cast<long>(data.size()));
        env.Close(fd);
        Bytes& ref = model[path];
        if (ref.size() < data.size()) {
          ref.resize(data.size());
        }
        std::copy(data.begin(), data.end(), ref.begin());
      } else if (op == 1) {
        // Full read-back comparison.
        const auto it = model.find(path);
        const int fd = env.Open(path, false);
        if (it == model.end()) {
          EXPECT_EQ(fd, -1) << path << " should not exist";
        } else {
          ASSERT_GE(fd, 0) << path;
          Bytes out;
          long total = 0;
          while (true) {
            const long n = env.Read(fd, 16 * 1024, &out);
            if (n <= 0) {
              break;
            }
            total += n;
          }
          EXPECT_EQ(total, static_cast<long>(it->second.size())) << path;
          EXPECT_EQ(out, it->second) << path;
          env.Close(fd);
        }
      } else {
        // Random-offset partial read via pread.
        const auto it = model.find(path);
        if (it == model.end() || it->second.empty()) {
          continue;
        }
        const int fd = env.Open(path, false);
        ASSERT_GE(fd, 0);
        const std::uint64_t off = rng.NextBelow(it->second.size());
        const std::size_t want = 1 + rng.NextBelow(kFsBlockBytes);
        Bytes out;
        const long n = env.ReadAt(fd, off, want, &out);
        const std::size_t expect_n =
            std::min<std::size_t>(want, it->second.size() - off);
        EXPECT_EQ(n, static_cast<long>(expect_n)) << path;
        EXPECT_TRUE(std::equal(out.begin(), out.end(),
                               it->second.begin() + static_cast<std::ptrdiff_t>(off)))
            << path << " @" << off;
        env.Close(fd);
      }
    }
    // Final sweep: flush everything, then verify every file one last time.
    k.fs().SyncAll();
    for (const auto& [path, contents] : model) {
      const int ino = k.fs().Namei(path);
      ASSERT_GE(ino, 0) << path;
      EXPECT_EQ(k.fs().FileSize(ino), contents.size()) << path;
      Bytes out;
      ASSERT_EQ(k.fs().ReadFile(ino, 0, contents.size(), &out),
                static_cast<long>(contents.size()));
      EXPECT_EQ(out, contents) << path;
    }
    done = true;
  });
  k.Run(Sec(600));
  ASSERT_TRUE(done) << "fuzz body did not finish in simulated time";
}

INSTANTIATE_TEST_SUITE_P(Seeds, FsFuzzTest, ::testing::Values(11u, 23u, 47u, 1993u));

}  // namespace
}  // namespace hwprof
