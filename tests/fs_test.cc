// Filesystem stack: FFS-lite semantics, buffer cache behaviour, disk model.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "src/analysis/decoder.h"
#include "src/kern/fs.h"
#include "src/kern/user_env.h"
#include "src/workloads/testbed.h"
#include "src/workloads/workloads.h"

namespace hwprof {
namespace {

void InProc(Testbed& tb, std::function<void(Kernel&, UserEnv&)> body) {
  Kernel& k = tb.kernel();
  bool done = false;
  k.Spawn("t", [&, body = std::move(body)](UserEnv& env) {
    body(k, env);
    done = true;
  });
  k.Run(Sec(120));
  ASSERT_TRUE(done) << "fs test body did not finish";
}

TEST(Fs, CreateWriteReadRoundTrip) {
  Testbed tb;
  InProc(tb, [](Kernel& k, UserEnv& env) {
    (void)k;
    const int fd = env.Open("/f", /*create=*/true);
    ASSERT_GE(fd, 0);
    const Bytes data = PatternBytes(1000);
    EXPECT_EQ(env.Write(fd, data), 1000);
    env.Close(fd);
    const int rd = env.Open("/f", false);
    Bytes out;
    EXPECT_EQ(env.Read(rd, 2000, &out), 1000);
    EXPECT_EQ(out, data);
  });
}

TEST(Fs, OpenMissingFileFails) {
  Testbed tb;
  InProc(tb, [](Kernel& k, UserEnv& env) {
    (void)k;
    EXPECT_EQ(env.Open("/missing", false), -1);
    EXPECT_EQ(env.Open("/no/such/dir/file", true), -1);
  });
}

TEST(Fs, SequentialReadsAdvanceOffset) {
  Testbed tb;
  InProc(tb, [](Kernel& k, UserEnv& env) {
    (void)k;
    const int fd = env.Open("/f", true);
    const Bytes data = PatternBytes(300);
    env.Write(fd, data);
    env.Close(fd);
    const int rd = env.Open("/f", false);
    Bytes a;
    Bytes b;
    Bytes c;
    EXPECT_EQ(env.Read(rd, 100, &a), 100);
    EXPECT_EQ(env.Read(rd, 100, &b), 100);
    EXPECT_EQ(env.Read(rd, 100, &c), 100);
    Bytes joined = a;
    joined.insert(joined.end(), b.begin(), b.end());
    joined.insert(joined.end(), c.begin(), c.end());
    EXPECT_EQ(joined, data);
    Bytes eof;
    EXPECT_EQ(env.Read(rd, 100, &eof), 0);
  });
}

TEST(Fs, MultiBlockFileSurvivesCacheEviction) {
  // Write more than the 64-buffer cache holds, then read it all back:
  // every byte must round-trip through the disk model.
  Testbed tb;
  InProc(tb, [](Kernel& k, UserEnv& env) {
    const std::size_t big = (kBufCacheBuffers + 16) * kFsBlockBytes;
    const int fd = env.Open("/big", true);
    const Bytes data = PatternBytes(big);
    ASSERT_EQ(env.Write(fd, data), static_cast<long>(big));
    env.Close(fd);
    k.fs().SyncAll();
    EXPECT_GT(k.fs().disk().writes_completed(), kBufCacheBuffers);
    const int rd = env.Open("/big", false);
    Bytes out;
    long total = 0;
    while (true) {
      const long n = env.Read(rd, 64 * 1024, &out);
      if (n <= 0) {
        break;
      }
      total += n;
    }
    ASSERT_EQ(total, static_cast<long>(big));
    EXPECT_EQ(out, data);
  });
}

TEST(Fs, HierarchicalDirectories) {
  Testbed tb;
  Kernel& k = tb.kernel();
  k.fs().InstallFile("/usr/share/dict/words", PatternBytes(100, 3));
  InProc(tb, [](Kernel& k2, UserEnv& env) {
    EXPECT_GE(k2.fs().Namei("/usr"), 0);
    EXPECT_TRUE(k2.fs().IsDirectory(k2.fs().Namei("/usr/share")));
    const int fd = env.Open("/usr/share/dict/words", false);
    ASSERT_GE(fd, 0);
    Bytes out;
    EXPECT_EQ(env.Read(fd, 200, &out), 100);
    EXPECT_EQ(out, PatternBytes(100, 3));
    // Sibling creation in a nested dir.
    EXPECT_GE(env.Open("/usr/share/dict/words2", true), 0);
    EXPECT_EQ(k2.fs().Namei("/usr/share/dict/nope"), -1);
  });
}

TEST(Fs, MkdirThenCreateInside) {
  Testbed tb;
  InProc(tb, [](Kernel& k, UserEnv& env) {
    EXPECT_GE(k.fs().Mkdir("/tmp"), 0);
    EXPECT_TRUE(k.fs().IsDirectory(k.fs().Namei("/tmp")));
    const int fd = env.Open("/tmp/x", true);
    EXPECT_GE(fd, 0);
    // Duplicate mkdir fails.
    EXPECT_EQ(k.fs().Mkdir("/tmp"), -1);
  });
}

TEST(Fs, PartialBlockOverwrite) {
  Testbed tb;
  InProc(tb, [](Kernel& k, UserEnv& env) {
    (void)k;
    const int fd = env.Open("/f", true);
    env.Write(fd, PatternBytes(kFsBlockBytes * 2, 1));
    env.Close(fd);
    // Overwrite 100 bytes in the middle through a fresh descriptor.
    const int fd2 = env.Open("/f", true);
    (void)fd2;
    // (Open(create) on an existing path fails; reuse the write path via fs.)
    Bytes patch(100, 0xEE);
    k.fs().WriteFile(k.fs().Namei("/f"), 5000, patch);
    const int rd = env.Open("/f", false);
    Bytes out;
    env.Read(rd, kFsBlockBytes * 2, &out);
    Bytes expect = PatternBytes(kFsBlockBytes * 2, 1);
    std::copy(patch.begin(), patch.end(), expect.begin() + 5000);
    EXPECT_EQ(out, expect);
  });
}

TEST(Fs, InstallFileScatteredSpreadsBlocks) {
  Testbed tb;
  Kernel& k = tb.kernel();
  const int ino = k.fs().InstallFileScattered("/scat", PatternBytes(64 * 1024), 13);
  ASSERT_GE(ino, 0);
  // Read it back through the kernel path: contents intact despite the
  // scattered allocation.
  InProc(tb, [](Kernel& k2, UserEnv& env) {
    (void)k2;
    const int fd = env.Open("/scat", false);
    Bytes out;
    long total = 0;
    while (true) {
      const long n = env.Read(fd, 32 * 1024, &out);
      if (n <= 0) {
        break;
      }
      total += n;
    }
    EXPECT_EQ(total, 64 * 1024);
    EXPECT_EQ(out, PatternBytes(64 * 1024));
  });
}

TEST(Fs, CacheHitsAvoidTheDisk) {
  Testbed tb;
  InProc(tb, [](Kernel& k, UserEnv& env) {
    const int fd = env.Open("/f", true);
    env.Write(fd, PatternBytes(kFsBlockBytes));
    env.Close(fd);
    k.fs().SyncAll();
    const std::uint64_t reads0 = k.fs().disk().reads_completed();
    // Two back-to-back reads: the block is cached after the write.
    for (int i = 0; i < 2; ++i) {
      const int rd = env.Open("/f", false);
      Bytes out;
      env.Read(rd, kFsBlockBytes, &out);
      env.Close(rd);
    }
    EXPECT_EQ(k.fs().disk().reads_completed(), reads0);
    EXPECT_GT(k.fs().cache_hits(), 0u);
  });
}

TEST(Fs, ColdReadCostsMechanicalTime) {
  // A cold 8 KiB read should take tens of milliseconds (paper: 18–26 ms).
  Testbed tb;
  Kernel& k = tb.kernel();
  k.fs().InstallFileScattered("/cold", PatternBytes(512 * 1024), 7);
  InProc(tb, [](Kernel& k2, UserEnv& env) {
    (void)k2;
    const int fd = env.Open("/cold", false);
    const Nanoseconds t0 = k2.Now();
    Bytes out;
    env.ReadAt(fd, 256 * 1024, kFsBlockBytes, &out);
    const Nanoseconds t = k2.Now() - t0;
    EXPECT_GT(t, Msec(5));
    EXPECT_LT(t, Msec(45));
    EXPECT_EQ(out.size(), kFsBlockBytes);
  });
}

TEST(Fs, WriteInterruptCostMatchesPaper) {
  // "Each write interrupt took about 200 µs in total, with about 149 µs of
  // that being actual transfer time."
  Testbed tb;
  tb.Arm();
  FsWriteResult res = RunFsWrite(tb, 512 * 1024, Sec(30));
  ASSERT_GT(res.disk_writes, 0u);
  RawTrace raw = tb.StopAndUpload();
  DecodedTrace decoded = Decoder::Decode(raw, tb.tags());
  const FuncStats* wdintr = decoded.Stats("wdintr");
  ASSERT_NE(wdintr, nullptr);
  const std::uint64_t avg_us = ToWholeUsec(wdintr->AvgNet());
  EXPECT_GT(avg_us, 150u);
  EXPECT_LT(avg_us, 260u);
}

TEST(Fs, WriteStormLeavesCpuMostlyIdle) {
  Testbed tb;
  FsWriteResult res = RunFsWrite(tb, 1 * kMiB, Sec(60));
  EXPECT_EQ(res.bytes_written, 1 * kMiB);
  // Paper: ~28% busy. Generous band: the disk, not the CPU, dominates.
  EXPECT_GT(res.cpu_busy_pct, 15.0);
  EXPECT_LT(res.cpu_busy_pct, 45.0);
}

TEST(Fs, FileSizeTracksWrites) {
  Testbed tb;
  InProc(tb, [](Kernel& k, UserEnv& env) {
    const int fd = env.Open("/f", true);
    env.Write(fd, Bytes(100, 1));
    env.Write(fd, Bytes(50, 2));
    EXPECT_EQ(k.fs().FileSize(k.fs().Namei("/f")), 150u);
  });
}

TEST(Fs, NameiChargesPerComponent) {
  // The old model billed every lookup a flat 30 us no matter the depth;
  // the charge must grow linearly with the component count.
  Testbed tb;
  InProc(tb, [](Kernel& k, UserEnv& env) {
    (void)env;
    ASSERT_GE(k.fs().InstallFile("/aa/bb/cc", PatternBytes(64)), 0);
    // Warm every directory block so the measured walks are pure CPU, and
    // take the cheapest of three samples so a clock tick landing inside
    // one call cannot skew the arithmetic.
    auto cost = [&k](const char* path) {
      Nanoseconds best = Sec(1);
      for (int i = 0; i < 3; ++i) {
        const Nanoseconds before = k.cpu().busy_ns();
        EXPECT_GE(k.fs().Namei(path), 0);
        best = std::min(best, k.cpu().busy_ns() - before);
      }
      return best;
    };
    cost("/aa/bb/cc");  // warm the cache end to end
    const Nanoseconds depth1 = cost("/aa");
    const Nanoseconds depth2 = cost("/aa/bb");
    const Nanoseconds depth3 = cost("/aa/bb/cc");
    // Each extra (same-length, single-entry-directory) component adds the
    // same increment, and at least the modeled per-component charge.
    EXPECT_EQ(depth3 - depth2, depth2 - depth1);
    EXPECT_GE(depth2 - depth1, k.cost().namei_per_component_ns);
  });
}

TEST(Fs, NameCacheKnobCountsHitsAndStaysCorrect) {
  TestbedConfig cached_config;
  cached_config.kernel.knobs.namei_cache = true;
  Testbed tb(cached_config);
  InProc(tb, [](Kernel& k, UserEnv& env) {
    ASSERT_GE(k.fs().InstallFile("/dir/sub/file", PatternBytes(256)), 0);
    const std::uint64_t hits_before = k.fs().namei_cache_hits();
    const int fd = env.Open("/dir/sub/file", false);
    ASSERT_GE(fd, 0);
    env.Close(fd);
    // The second walk re-resolves dir, sub and file straight from the
    // cache, and the bytes read are still the right ones.
    const std::uint64_t hits_mid = k.fs().namei_cache_hits();
    const int fd2 = env.Open("/dir/sub/file", false);
    ASSERT_GE(fd2, 0);
    EXPECT_GE(k.fs().namei_cache_hits() - hits_mid, 3u);
    EXPECT_GE(hits_mid, hits_before);
    Bytes out;
    EXPECT_EQ(env.Read(fd2, 512, &out), 256);
    EXPECT_EQ(out, PatternBytes(256));
    env.Close(fd2);
    // Creating an entry after a failed lookup works: misses are never
    // cached, and DirAdd invalidates the (dir, name) pair defensively.
    EXPECT_EQ(env.Open("/dir/fresh", false), -1);
    const int created = env.Open("/dir/fresh", true);
    ASSERT_GE(created, 0);
    env.Close(created);
    EXPECT_GE(k.fs().Namei("/dir/fresh"), 0);
  });
}

TEST(Fs, NameCacheCountersStayZeroWithTheKnobOff) {
  Testbed tb;
  InProc(tb, [](Kernel& k, UserEnv& env) {
    ASSERT_GE(k.fs().InstallFile("/dir/file", PatternBytes(64)), 0);
    for (int i = 0; i < 3; ++i) {
      const int fd = env.Open("/dir/file", false);
      ASSERT_GE(fd, 0);
      env.Close(fd);
    }
    EXPECT_EQ(k.fs().namei_cache_hits(), 0u);
    EXPECT_EQ(k.fs().namei_cache_misses(), 0u);
  });
}

TEST(Fs, NameCacheEvictsTheLeastRecentlyUsedEntry) {
  // The cache holds 64 entries; touching 80 distinct names in order must
  // evict the oldest, so re-resolving the first name misses again.
  TestbedConfig cached_config;
  cached_config.kernel.knobs.namei_cache = true;
  Testbed tb(cached_config);
  InProc(tb, [](Kernel& k, UserEnv& env) {
    (void)env;
    // Install everything first: InstallFile writes straight to media, so
    // interleaving it with lookups would read stale cached dir blocks.
    for (int i = 0; i < 80; ++i) {
      ASSERT_GE(k.fs().InstallFile("/f" + std::to_string(i), PatternBytes(16)), 0);
    }
    for (int i = 0; i < 80; ++i) {
      ASSERT_GE(k.fs().Namei("/f" + std::to_string(i)), 0);  // enter the cache
    }
    const std::uint64_t misses_before = k.fs().namei_cache_misses();
    const std::uint64_t hits_before = k.fs().namei_cache_hits();
    ASSERT_GE(k.fs().Namei("/f0"), 0);  // long since evicted
    EXPECT_EQ(k.fs().namei_cache_hits(), hits_before);
    EXPECT_GT(k.fs().namei_cache_misses(), misses_before);
    // A just-touched name is still resident.
    const std::uint64_t hits_mid = k.fs().namei_cache_hits();
    ASSERT_GE(k.fs().Namei("/f79"), 0);
    EXPECT_GT(k.fs().namei_cache_hits(), hits_mid);
  });
}

}  // namespace
}  // namespace hwprof
