// Golden-file tests for the paper's two headline reports: the Figure 3
// summary and the Figure 4 code-path trace, rendered from a fixed,
// deterministic network-receive capture (the simulator is bit-exact across
// runs, see determinism_test). Any change to capture, decode or formatting
// shows up as a readable diff against tests/golden/.
//
// To regenerate after an intentional change:
//   HWPROF_REGEN_GOLDEN=1 ./build/tests/golden_test

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "src/analysis/decoder.h"
#include "src/analysis/parallel.h"
#include "src/analysis/summary.h"
#include "src/analysis/trace_report.h"
#include "src/profhw/binary_trace.h"
#include "src/workloads/testbed.h"
#include "src/workloads/workloads.h"
#include "tools/convert_main.h"

namespace hwprof {
namespace {

std::string GoldenPath(const std::string& name) {
  return std::string(HWPROF_TEST_DIR) + "/golden/" + name;
}

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

void CheckGolden(const std::string& name, const std::string& actual) {
  const std::string path = GoldenPath(name);
  if (std::getenv("HWPROF_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << actual;
    ASSERT_TRUE(out.good()) << "write to " << path << " failed";
    GTEST_SKIP() << "regenerated " << name;
  }
  std::string expected;
  ASSERT_TRUE(ReadFile(path, &expected))
      << path << " is missing; run with HWPROF_REGEN_GOLDEN=1 to create it";
  EXPECT_EQ(actual, expected)
      << name << " drifted; if the change is intentional, regenerate with "
      << "HWPROF_REGEN_GOLDEN=1";
}

// One fixed capture shared by both goldens (building it dominates runtime).
// The testbed outlives the decode: DecodedTrace points into its TagFile.
const DecodedTrace& ReferenceDecode() {
  static const DecodedTrace* decoded = [] {
    auto* tb = new Testbed();
    tb->Arm();
    RunNetworkReceive(*tb, Sec(2), 128 * 1024, false);
    const RawTrace raw = tb->StopAndUpload();
    return new DecodedTrace(Decoder::Decode(raw, tb->tags()));
  }();
  return *decoded;
}

TEST(Golden, Figure3SummaryOfTheNetworkReceive) {
  CheckGolden("net_receive_summary.txt", Summary(ReferenceDecode()).Format(20));
}

TEST(Golden, Figure4CodePathTraceOfTheNetworkReceive) {
  TraceReportOptions opts;
  opts.max_lines = 120;
  CheckGolden("net_receive_trace.txt", TraceReport::Format(ReferenceDecode(), opts));
}

// Captures for the Table 1 and Figure 5 goldens, each decoded through BOTH
// the serial decoder and the parallel sharded engine: the golden file pins
// the report, and the second decode pins the serial/parallel equivalence on
// a real workload (small shards force actual stitching).
struct DualDecode {
  Testbed tb;
  DecodedTrace serial;
  DecodedTrace parallel;
};

const DualDecode& MixedDecode() {
  static const DualDecode* decoded = [] {
    auto* d = new DualDecode();
    d->tb.Arm();
    RunMixed(d->tb, Msec(300));
    const RawTrace raw = d->tb.StopAndUpload();
    d->serial = Decoder::Decode(raw, d->tb.tags());
    d->parallel = DecodeParallel(raw, d->tb.tags(),
                                 ParallelOptions{.jobs = 4, .shard_target_ops = 512});
    return d;
  }();
  return *decoded;
}

const DualDecode& ForkExecDecode() {
  static const DualDecode* decoded = [] {
    auto* d = new DualDecode();
    d->tb.Arm();
    RunForkExec(d->tb, 3, Sec(2));
    const RawTrace raw = d->tb.StopAndUpload();
    d->serial = Decoder::Decode(raw, d->tb.tags());
    d->parallel = DecodeParallel(raw, d->tb.tags(),
                                 ParallelOptions{.jobs = 4, .shard_target_ops = 512});
    return d;
  }();
  return *decoded;
}

TEST(Golden, Table1PerFunctionTimingsOfTheMixedWorkload) {
  const std::string report = Summary(MixedDecode().serial).Format(30);
  EXPECT_EQ(Summary(MixedDecode().parallel).Format(30), report)
      << "parallel decode diverged from serial on the mixed capture";
  CheckGolden("mixed_summary.txt", report);
}

TEST(Golden, Figure5ForkExecCodePath) {
  TraceReportOptions opts;
  opts.max_lines = 160;
  const std::string report = TraceReport::Format(ForkExecDecode().serial, opts);
  EXPECT_EQ(TraceReport::Format(ForkExecDecode().parallel, opts), report)
      << "parallel decode diverged from serial on the fork/exec capture";
  CheckGolden("fork_exec_trace.txt", report);
}

// The binary (hwpb) twin of the committed net_receive capture. The text
// golden is the source of truth (export_test regenerates it from the live
// workload); this test pins that the committed .bin is its exact canonical
// encode, that the .bin decodes back to the text golden byte-for-byte, and
// that the hwprof_convert entry point translates one committed golden into
// the other bit-identically — which is what CI's format-matrix job runs
// against the real binaries.
TEST(Golden, BinaryNetReceiveCaptureIsTheTextGoldensTwin) {
  const std::string text_path = GoldenPath("net_receive.capture");
  std::string text;
  ASSERT_TRUE(ReadFile(text_path, &text))
      << text_path << " is missing; regenerate via export_test with "
      << "HWPROF_REGEN_GOLDEN=1 first";
  RawTrace raw;
  ASSERT_TRUE(RawTrace::Deserialize(text, &raw));
  CheckGolden("net_receive.capture.bin", EncodeCaptureBinary(raw));

  std::string bin;
  ASSERT_TRUE(ReadFile(GoldenPath("net_receive.capture.bin"), &bin));
  RawTrace back;
  std::vector<TraceDiag> diags;
  ASSERT_TRUE(DecodeCaptureBinary(bin, &back, &diags))
      << (diags.empty() ? "" : diags[0].message);
  EXPECT_EQ(back.Serialize(), text)
      << "the committed binary golden no longer decodes to the text golden";

  const std::string converted =
      ::testing::TempDir() + "/net_receive_converted.hwpb";
  const char* argv[] = {"hwprof_convert", text_path.c_str(), converted.c_str()};
  std::string error;
  ::testing::internal::CaptureStdout();
  ASSERT_EQ(ConvertMain(3, argv, &error), 0) << error;
  ::testing::internal::GetCapturedStdout();
  std::string converted_bytes;
  ASSERT_TRUE(ReadFile(converted, &converted_bytes));
  EXPECT_EQ(converted_bytes, bin)
      << "hwprof_convert of the text golden drifted from the binary golden";
}

}  // namespace
}  // namespace hwprof
