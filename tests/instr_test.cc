// Unit tests for src/instr: tag file format, instrumenter, two-stage link.

#include <gtest/gtest.h>

#include "src/instr/instrumenter.h"
#include "src/instr/linker.h"
#include "src/instr/profile_scope.h"
#include "src/instr/tag_file.h"
#include "src/sim/machine.h"

namespace hwprof {
namespace {

// --- TagFile parsing ------------------------------------------------------------

TEST(TagFile, ParsesThePapersSample) {
  // Verbatim from the paper.
  const char* text =
      "main/502\n"
      "hardclock/510\n"
      "gatherstats/512\n"
      "softclock/514\n"
      "timeout/516\n"
      "untimeout/518\n"
      "swtch/600!\n"
      "MGET/1002=\n";
  TagFile file;
  ASSERT_TRUE(TagFile::Parse(text, &file));
  EXPECT_EQ(file.size(), 8u);

  const TagEntry* main_fn = file.FindByName("main");
  ASSERT_NE(main_fn, nullptr);
  EXPECT_EQ(main_fn->tag, 502);
  EXPECT_EQ(main_fn->kind, TagKind::kFunction);
  EXPECT_EQ(main_fn->exit_tag(), 503);

  const TagEntry* swtch = file.FindByName("swtch");
  ASSERT_NE(swtch, nullptr);
  EXPECT_EQ(swtch->kind, TagKind::kContextSwitch);

  const TagEntry* mget = file.FindByName("MGET");
  ASSERT_NE(mget, nullptr);
  EXPECT_EQ(mget->kind, TagKind::kInline);
}

TEST(TagFile, FindByTagCoversEntryAndExit) {
  TagFile file;
  ASSERT_TRUE(TagFile::Parse("foo/100\nbar/102\n", &file));
  EXPECT_EQ(file.FindByTag(100)->name, "foo");
  EXPECT_EQ(file.FindByTag(101)->name, "foo");  // exit tag
  EXPECT_EQ(file.FindByTag(102)->name, "bar");
  EXPECT_EQ(file.FindByTag(104), nullptr);
}

TEST(TagFile, InlineTagsCoverOnlyTheirValue) {
  TagFile file;
  ASSERT_TRUE(TagFile::Parse("MARK/111=\n", &file));
  EXPECT_NE(file.FindByTag(111), nullptr);
  EXPECT_EQ(file.FindByTag(112), nullptr);
}

TEST(TagFile, RejectsOddFunctionTags) {
  TagFile file;
  EXPECT_FALSE(TagFile::Parse("foo/101\n", &file));
}

TEST(TagFile, RejectsDuplicateNamesAndOverlappingTags) {
  TagFile file;
  EXPECT_FALSE(TagFile::Parse("foo/100\nfoo/200\n", &file));
  EXPECT_FALSE(TagFile::Parse("foo/100\nbar/100\n", &file));
  // bar's entry tag collides with foo's exit tag (100+1 = 101 is covered,
  // and an inline at 101 overlaps it).
  EXPECT_FALSE(TagFile::Parse("foo/100\nM/101=\n", &file));
}

TEST(TagFile, SkipsCommentsAndBlanks) {
  TagFile file;
  ASSERT_TRUE(TagFile::Parse("# comment\n\n  \nfoo/100\n", &file));
  EXPECT_EQ(file.size(), 1u);
}

TEST(TagFile, RejectsMalformedLines) {
  TagFile file;
  EXPECT_FALSE(TagFile::Parse("noslash\n", &file));
  EXPECT_FALSE(TagFile::Parse("/100\n", &file));
  EXPECT_FALSE(TagFile::Parse("foo/abc\n", &file));
  EXPECT_FALSE(TagFile::Parse("foo/70000\n", &file));
}

TEST(TagFile, ParseReportsLineAndReasonForEveryProblem) {
  const char* text =
      "main/500\n"
      "main/502\n"    // duplicate name
      "odd/503\n"     // odd function tag
      "clash/500\n"   // collides with main's entry tag
      "bad/zzz\n"     // non-numeric value
      "noslash\n";
  TagFile file;
  std::vector<TagDiag> diags;
  EXPECT_FALSE(TagFile::Parse(text, &file, &diags));
  ASSERT_EQ(diags.size(), 5u);
  EXPECT_EQ(diags[0].line, 2);
  EXPECT_NE(diags[0].message.find("duplicate name 'main'"), std::string::npos);
  EXPECT_EQ(diags[1].line, 3);
  EXPECT_NE(diags[1].message.find("odd"), std::string::npos);
  EXPECT_EQ(diags[2].line, 4);
  EXPECT_NE(diags[2].message.find("already covered"), std::string::npos);
  EXPECT_EQ(diags[3].line, 5);
  EXPECT_NE(diags[3].message.find("not a non-negative integer"), std::string::npos);
  EXPECT_EQ(diags[4].line, 6);
  EXPECT_NE(diags[4].message.find("missing '/'"), std::string::npos);
}

TEST(TagFile, ParseWithDiagsLeavesOutputUntouchedOnFailure) {
  TagFile file;
  ASSERT_TRUE(TagFile::Parse("keep/100\n", &file));
  std::vector<TagDiag> diags;
  EXPECT_FALSE(TagFile::Parse("bad/101\n", &file, &diags));
  ASSERT_EQ(diags.size(), 1u);
  // The earlier successful parse survives the failed one.
  EXPECT_NE(file.FindByName("keep"), nullptr);
}

TEST(TagFile, FormatParsesBackIdentically) {
  TagFile file;
  ASSERT_TRUE(TagFile::Parse("main/502\nswtch/600!\nMGET/1002=\n", &file));
  TagFile again;
  ASSERT_TRUE(TagFile::Parse(file.Format(), &again));
  EXPECT_EQ(again.Format(), file.Format());
  EXPECT_EQ(again.size(), file.size());
}

TEST(TagFile, GroupAnnotationParsesAndRoundTrips) {
  TagFile file;
  ASSERT_TRUE(TagFile::Parse(
      "vm_fault/700 group=vm\nswtch/800! group=sched\nplain/900\nMGET/1002= group=kmem\n",
      &file));
  ASSERT_NE(file.FindByName("vm_fault"), nullptr);
  EXPECT_EQ(file.FindByName("vm_fault")->group, "vm");
  EXPECT_EQ(file.FindByName("swtch")->group, "sched");
  EXPECT_EQ(file.FindByName("MGET")->group, "kmem");
  EXPECT_TRUE(file.FindByName("plain")->group.empty());

  const auto groups = file.GroupsByName();
  EXPECT_EQ(groups.size(), 3u);
  EXPECT_EQ(groups.at("vm_fault"), "vm");
  EXPECT_EQ(groups.count("plain"), 0u);

  // Format renders the annotation back and the result re-parses identically.
  EXPECT_NE(file.Format().find("vm_fault/700 group=vm"), std::string::npos);
  TagFile again;
  ASSERT_TRUE(TagFile::Parse(file.Format(), &again));
  EXPECT_EQ(again.Format(), file.Format());
}

TEST(TagFile, GroupAnnotationErrorsCarryLineAndReason) {
  const char* text =
      "ok/500 group=net\n"
      "a/502 group\n"               // missing '=LABEL'
      "b/504 group=\n"              // empty label
      "c/506 group=v=m\n"           // '=' inside the label
      "d/508 color=red\n"           // unknown annotation
      "e/510 group=vm group=fs\n";  // duplicate annotation
  TagFile file;
  std::vector<TagDiag> diags;
  EXPECT_FALSE(TagFile::Parse(text, &file, &diags));
  ASSERT_EQ(diags.size(), 5u);
  EXPECT_EQ(diags[0].line, 2);
  EXPECT_NE(diags[0].message.find("missing '=LABEL'"), std::string::npos);
  EXPECT_EQ(diags[1].line, 3);
  EXPECT_NE(diags[1].message.find("empty group label"), std::string::npos);
  EXPECT_EQ(diags[2].line, 4);
  EXPECT_NE(diags[2].message.find("malformed group label 'v=m'"), std::string::npos);
  EXPECT_EQ(diags[3].line, 5);
  EXPECT_NE(diags[3].message.find("unknown annotation 'color=red'"), std::string::npos);
  EXPECT_EQ(diags[4].line, 6);
  EXPECT_NE(diags[4].message.find("duplicate group annotation"), std::string::npos);
}

TEST(TagFile, SetGroupBackfillsExistingEntries) {
  TagFile file;
  ASSERT_TRUE(TagFile::Parse("f/600\n", &file));
  EXPECT_FALSE(file.SetGroup("nosuch", "vm"));
  EXPECT_TRUE(file.SetGroup("f", "vm"));
  EXPECT_EQ(file.FindByName("f")->group, "vm");
  EXPECT_EQ(file.GroupsByName().at("f"), "vm");
}

TEST(TagFile, AssignTakesNextValueAboveHighest) {
  TagFile file;
  ASSERT_TRUE(TagFile::Parse("base/500\n", &file));
  // Highest covered tag is 501 (base's exit) -> next even is 502.
  EXPECT_EQ(file.Assign("f1", TagKind::kFunction), 502);
  EXPECT_EQ(file.Assign("f2", TagKind::kFunction), 504);
  // Inline takes the next raw value (odd allowed).
  EXPECT_EQ(file.Assign("m1", TagKind::kInline), 506);
  EXPECT_EQ(file.Assign("f3", TagKind::kFunction), 508);
}

TEST(TagFile, MergeConcatenatesDisjointFiles) {
  TagFile a;
  TagFile b;
  ASSERT_TRUE(TagFile::Parse("foo/100\n", &a));
  ASSERT_TRUE(TagFile::Parse("bar/200\n", &b));
  EXPECT_TRUE(a.Merge(b));
  EXPECT_EQ(a.size(), 2u);
  EXPECT_NE(a.FindByName("bar"), nullptr);
}

TEST(TagFile, MergeRejectsCollisionsAtomically) {
  TagFile a;
  TagFile b;
  ASSERT_TRUE(TagFile::Parse("foo/100\n", &a));
  ASSERT_TRUE(TagFile::Parse("ok/200\nfoo/300\n", &b));
  EXPECT_FALSE(a.Merge(b));
  EXPECT_EQ(a.size(), 1u);  // nothing from b leaked in
}

// --- Instrumenter ---------------------------------------------------------------------

TEST(Instrumenter, AssignsAndExtendsTheFile) {
  TagFile tags;
  ASSERT_TRUE(TagFile::Parse("__base/500\n", &tags));
  Instrumenter instr(&tags);
  FuncInfo* a = instr.RegisterFunction("alpha", Subsys::kNet);
  FuncInfo* b = instr.RegisterFunction("beta", Subsys::kVm);
  EXPECT_EQ(a->entry_tag, 502);
  EXPECT_EQ(b->entry_tag, 504);
  EXPECT_EQ(instr.function_count(), 2u);
  EXPECT_NE(tags.FindByName("alpha"), nullptr);  // file extended
}

TEST(Instrumenter, ReusesTagsOnRecompilation) {
  TagFile tags;
  ASSERT_TRUE(TagFile::Parse("alpha/700\n", &tags));
  Instrumenter instr(&tags);
  FuncInfo* a = instr.RegisterFunction("alpha", Subsys::kNet);
  EXPECT_EQ(a->entry_tag, 700);  // stable across recompiles
}

TEST(Instrumenter, StampsSubsystemGroupsOnTheTagFile) {
  TagFile tags;
  ASSERT_TRUE(TagFile::Parse("seeded/600\n", &tags));
  Instrumenter instr(&tags);
  instr.RegisterFunction("tcp_x", Subsys::kNet);
  instr.RegisterFunction("seeded", Subsys::kVm);  // pre-seeded entry, no group yet
  EXPECT_EQ(tags.FindByName("tcp_x")->group, "net");
  EXPECT_EQ(tags.FindByName("seeded")->group, "vm");  // backfilled
}

TEST(Instrumenter, SelectiveProfilingBySubsystem) {
  TagFile tags;
  Instrumenter instr(&tags);
  FuncInfo* net_fn = instr.RegisterFunction("tcp_x", Subsys::kNet);
  FuncInfo* vm_fn = instr.RegisterFunction("pmap_x", Subsys::kVm);
  instr.DisableAll();
  instr.SetSubsysEnabled(Subsys::kNet, true);
  EXPECT_TRUE(net_fn->enabled);
  EXPECT_FALSE(vm_fn->enabled);
  instr.EnableAll();
  EXPECT_TRUE(vm_fn->enabled);
}

TEST(InstrumenterDeath, DoubleRegistrationAborts) {
  TagFile tags;
  Instrumenter instr(&tags);
  instr.RegisterFunction("dup", Subsys::kNet);
  EXPECT_DEATH(instr.RegisterFunction("dup", Subsys::kNet), "twice");
}

// --- ProfileScope ------------------------------------------------------------------------

class CountingTap : public EpromTapListener {
 public:
  void OnEpromRead(std::uint16_t addr, Nanoseconds) override { tags.push_back(addr); }
  std::vector<std::uint16_t> tags;
};

TEST(ProfileScope, EmitsEntryAndExitTriggers) {
  Machine machine;
  TagFile tags;
  Instrumenter instr(&tags);
  FuncInfo* fn = instr.RegisterFunction("foo", Subsys::kNet);
  Linker::Link(machine, instr, 600 * 1024);
  CountingTap tap;
  machine.bus().AddTapListener(&tap);
  {
    ProfileScope scope(machine, instr, fn);
  }
  ASSERT_EQ(tap.tags.size(), 2u);
  EXPECT_EQ(tap.tags[0], fn->entry_tag);
  EXPECT_EQ(tap.tags[1], fn->exit_tag());
}

TEST(ProfileScope, DisabledFunctionIsFree) {
  Machine machine;
  TagFile tags;
  Instrumenter instr(&tags);
  FuncInfo* fn = instr.RegisterFunction("foo", Subsys::kNet);
  Linker::Link(machine, instr, 600 * 1024);
  fn->enabled = false;
  CountingTap tap;
  machine.bus().AddTapListener(&tap);
  const Nanoseconds before = machine.Now();
  {
    ProfileScope scope(machine, instr, fn);
  }
  EXPECT_TRUE(tap.tags.empty());
  EXPECT_EQ(machine.Now(), before);  // zero cost when compiled out
}

TEST(ProfileScope, UnlinkedKernelIsInert) {
  Machine machine;
  TagFile tags;
  Instrumenter instr(&tags);
  FuncInfo* fn = instr.RegisterFunction("foo", Subsys::kNet);
  CountingTap tap;
  machine.bus().AddTapListener(&tap);
  {
    ProfileScope scope(machine, instr, fn);
  }
  EXPECT_TRUE(tap.tags.empty());
}

TEST(ProfileScope, InlineTriggerEmitsOneEvent) {
  Machine machine;
  TagFile tags;
  Instrumenter instr(&tags);
  FuncInfo* mark = instr.RegisterInline("MARK", Subsys::kNet);
  Linker::Link(machine, instr, 600 * 1024);
  CountingTap tap;
  machine.bus().AddTapListener(&tap);
  InlineTrigger(machine, instr, mark);
  ASSERT_EQ(tap.tags.size(), 1u);
  EXPECT_EQ(tap.tags[0], mark->entry_tag);
}

// --- Linker (the Figure 2 fixed point) -------------------------------------------------------

TEST(Linker, ImageGrowsWithInstrumentation) {
  Machine machine;
  TagFile tags;
  Instrumenter instr(&tags);
  for (int i = 0; i < 10; ++i) {
    instr.RegisterFunction("fn" + std::to_string(i), Subsys::kNet);
  }
  instr.RegisterInline("MARK", Subsys::kNet);
  const LinkResult result = Linker::Link(machine, instr, 600 * 1024);
  // 10 functions x 2 triggers x 5 bytes + 1 inline x 5 bytes.
  EXPECT_EQ(result.kernel_size, 600 * 1024 + 10 * 2 * 5 + 5);
  EXPECT_EQ(result.profile_base,
            result.isa_va_base + (kDefaultEpromSocketPhys - kIsaHoleBase));
  EXPECT_EQ(instr.profile_base(), result.profile_base);
}

TEST(Linker, ProfileBaseDependsOnKernelSize) {
  Machine m1;
  Machine m2;
  TagFile t1;
  TagFile t2;
  Instrumenter i1(&t1);
  Instrumenter i2(&t2);
  i1.RegisterFunction("f", Subsys::kNet);
  i2.RegisterFunction("f", Subsys::kNet);
  const LinkResult r1 = Linker::Link(m1, i1, 600 * 1024);
  const LinkResult r2 = Linker::Link(m2, i2, 900 * 1024);
  EXPECT_NE(r1.profile_base, r2.profile_base);
}

TEST(Linker, UnprofiledLinkLeavesTriggersInert) {
  Machine machine;
  TagFile tags;
  Instrumenter instr(&tags);
  instr.RegisterFunction("f", Subsys::kNet);
  const LinkResult result = Linker::LinkUnprofiled(machine, instr, 600 * 1024);
  EXPECT_EQ(result.profile_base, 0u);
  EXPECT_FALSE(instr.linked());
  EXPECT_EQ(result.kernel_size, 600u * 1024);  // no growth
}

}  // namespace
}  // namespace hwprof
