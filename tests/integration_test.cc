// Integration tests: the paper's experiments at reduced scale, with the
// headline observations asserted as (generous) bands, plus cross-cutting
// invariants every capture must satisfy.

#include <gtest/gtest.h>

#include <algorithm>

#include "src/analysis/decoder.h"
#include "src/analysis/grouping.h"
#include "src/analysis/summary.h"
#include "src/kern/clock.h"
#include "src/kern/fs.h"
#include "src/kern/net.h"
#include "src/kern/user_env.h"
#include "src/workloads/testbed.h"
#include "src/workloads/workloads.h"

namespace hwprof {
namespace {

// Every decoded capture must satisfy these.
void CheckCaptureInvariants(const DecodedTrace& d) {
  EXPECT_EQ(d.unknown_tags, 0u);
  EXPECT_EQ(d.orphan_exits, 0u);
  // Truncation may leave unclosed entries; nothing else should.
  if (!d.truncated) {
    EXPECT_LE(d.unclosed_entries, 2u);
  }
  // Time accounting: idle + run == elapsed; per-function net sums to at
  // most the elapsed total.
  EXPECT_EQ(d.RunTime() + d.idle_time, d.ElapsedTotal());
  Nanoseconds total_net = 0;
  for (const auto& [name, stats] : d.per_function) {
    (void)name;
    total_net += stats.net;
    EXPECT_GE(stats.elapsed, stats.net);
    EXPECT_LE(stats.min_net, stats.max_net);
  }
  EXPECT_LE(total_net, d.ElapsedTotal());
}

TEST(Integration, NetworkReceiveMatchesFigure3Shape) {
  Testbed tb;
  tb.Arm();
  NetReceiveResult res = RunNetworkReceive(tb, Sec(5), 512 * 1024);
  EXPECT_TRUE(res.integrity_ok);
  RawTrace raw = tb.StopAndUpload();
  DecodedTrace d = Decoder::Decode(raw, tb.tags());
  CheckCaptureInvariants(d);
  Summary s(d);

  // Paper Fig 3: bcopy and in_cksum are the top two functions, each around
  // a third of the CPU.
  ASSERT_GE(s.rows().size(), 2u);
  std::vector<std::string> top2{s.rows()[0].name, s.rows()[1].name};
  std::sort(top2.begin(), top2.end());
  // swtch (idle) may sneak in; look at the top non-swtch rows.
  std::vector<const SummaryRow*> busy;
  for (const SummaryRow& row : s.rows()) {
    if (row.name != "swtch") {
      busy.push_back(&row);
    }
  }
  ASSERT_GE(busy.size(), 2u);
  EXPECT_TRUE((busy[0]->name == "bcopy" && busy[1]->name == "in_cksum") ||
              (busy[0]->name == "in_cksum" && busy[1]->name == "bcopy"))
      << busy[0]->name << ", " << busy[1]->name;
  EXPECT_GT(busy[0]->pct_net, 25.0);
  EXPECT_LT(busy[0]->pct_net, 50.0);
  EXPECT_GT(busy[1]->pct_net, 25.0);

  // spl* overhead: the paper measures ~9%; we land in a 3–12% band.
  Grouping spl(d, Grouping::SplGroup(d));
  const GroupRow* spl_row = spl.Row("spl*");
  ASSERT_NE(spl_row, nullptr);
  EXPECT_GT(spl_row->pct_net, 3.0);
  EXPECT_LT(spl_row->pct_net, 12.0);

  // The CPU is close to saturated (paper: 99% busy).
  EXPECT_LT(ToMsecF(d.idle_time) / ToMsecF(d.ElapsedTotal()), 0.15);

  // Per-packet driver copy ~1 ms (paper: 1045 µs for a full frame).
  const FuncStats* bcopy = d.Stats("bcopy");
  ASSERT_NE(bcopy, nullptr);
  EXPECT_GT(ToWholeUsec(bcopy->max_net), 900u);
  EXPECT_LT(ToWholeUsec(bcopy->max_net), 1200u);
}

TEST(Integration, ForkExecMatchesFigure5Shape) {
  Testbed tb;
  tb.Arm();
  ForkExecResult res = RunForkExec(tb, 6, Sec(10));
  ASSERT_GE(res.iterations_done, 3);
  RawTrace raw = tb.StopAndUpload();
  DecodedTrace d = Decoder::Decode(raw, tb.tags());
  CheckCaptureInvariants(d);

  // Paper: vfork ~24 ms + execve ~28 ms ≈ 52 ms per cycle (warm cache).
  ASSERT_GE(res.cycle_times.size(), 2u);
  for (std::size_t i = 1; i < res.cycle_times.size(); ++i) {
    EXPECT_GT(res.cycle_times[i], Msec(30)) << "cycle " << i;
    EXPECT_LT(res.cycle_times[i], Msec(90)) << "cycle " << i;
  }

  // Fig 5: the pmap module dominates; pmap_remove outweighs pmap_pte.
  const FuncStats* remove = d.Stats("pmap_remove");
  const FuncStats* pte = d.Stats("pmap_pte");
  ASSERT_NE(remove, nullptr);
  ASSERT_NE(pte, nullptr);
  EXPECT_GT(remove->net, pte->net);
  EXPECT_GT(remove->net, d.RunTime() / 10);  // >10% of busy time

  // "pmap_pte is called 1053 times when a fork is executed": per cycle we
  // see on the order of a thousand calls.
  const std::uint64_t per_cycle =
      pte->calls / static_cast<std::uint64_t>(res.iterations_done);
  EXPECT_GT(per_cycle, 500u);
  EXPECT_LT(per_cycle, 2500u);

  // vm_fault per-call net is small (paper: 42 µs avg net; 410 µs elapsed).
  const FuncStats* fault = d.Stats("vm_fault");
  ASSERT_NE(fault, nullptr);
  EXPECT_LT(ToWholeUsec(fault->AvgNet()), 90u);
  EXPECT_GT(ToWholeUsec(fault->elapsed / fault->calls), 280u);

  // The console scroll shows up as bcopyb, just like Fig 5.
  EXPECT_NE(d.Stats("bcopyb"), nullptr);
}

TEST(Integration, Table1FunctionTimings) {
  Testbed tb;
  tb.Arm();
  RunMixed(tb, Sec(3));
  RawTrace raw = tb.StopAndUpload();
  DecodedTrace d = Decoder::Decode(raw, tb.tags());
  CheckCaptureInvariants(d);

  struct Expectation {
    const char* name;
    std::uint64_t paper_us;
    double tolerance;  // fraction
    bool leaf;         // leaf functions compare net (interrupts that land on
                       // top are not "subroutines called")
  };
  const Expectation expectations[] = {
      {"vm_fault", 410, 0.45, false}, {"kmem_alloc", 801, 0.45, false},
      {"malloc", 37, 0.5, false},     {"free", 32, 0.5, false},
      {"splnet", 11, 0.5, true},      {"spl0", 25, 0.5, true},
      {"copyinstr", 170, 0.6, true},
  };
  for (const Expectation& e : expectations) {
    const FuncStats* stats = d.Stats(e.name);
    ASSERT_NE(stats, nullptr) << e.name << " never ran in the mixed workload";
    const Nanoseconds basis = e.leaf ? stats->net : stats->elapsed;
    const double avg_us =
        static_cast<double>(ToWholeUsec(basis)) / static_cast<double>(stats->calls);
    EXPECT_GT(avg_us, static_cast<double>(e.paper_us) * (1.0 - e.tolerance)) << e.name;
    EXPECT_LT(avg_us, static_cast<double>(e.paper_us) * (1.0 + e.tolerance)) << e.name;
  }
}

TEST(Integration, ClockTickCostNear94us) {
  Testbed tb;
  tb.Arm();
  tb.kernel().Run(Sec(3));
  RawTrace raw = tb.StopAndUpload();
  DecodedTrace d = Decoder::Decode(raw, tb.tags());
  CheckCaptureInvariants(d);
  // The whole tick: ISAINTR wrapping hardclock (+AST emulation).
  const FuncStats* isaintr = d.Stats("ISAINTR");
  ASSERT_NE(isaintr, nullptr);
  const std::uint64_t tick_us = ToWholeUsec(isaintr->elapsed / isaintr->calls);
  EXPECT_GT(tick_us, 75u);
  EXPECT_LT(tick_us, 115u);
}

TEST(Integration, TriggerOverheadMatchesPaper) {
  // "this has been calculated at around 1 to 1.2% extra CPU cycles".
  // Run the same deterministic workload profiled and unprofiled and compare
  // total busy time.
  auto run_one = [](bool profiled) {
    TestbedConfig config;
    config.profiled = profiled;
    Testbed tb(config);
    Kernel& k = tb.kernel();
    k.fs().InstallFile("/bin/test", PatternBytes(64 * 1024));
    k.Spawn(
        "sh",
        [&k](UserEnv& env) {
          for (int i = 0; i < 3 && !k.stopping(); ++i) {
            env.Vfork([](UserEnv& c) {
              c.Execve("/bin/test");
              c.Exit(0);
            });
            env.Wait();
          }
        },
        600);
    k.Run(Sec(2));
    return tb.kernel().cpu().busy_ns();
  };
  const double with = static_cast<double>(run_one(true));
  const double without = static_cast<double>(run_one(false));
  const double overhead_pct = 100.0 * (with - without) / without;
  EXPECT_GT(overhead_pct, 0.1);
  EXPECT_LT(overhead_pct, 3.0) << "trigger overhead should be a few percent at most";
}

TEST(Integration, CaptureFillRateUnderLoad) {
  // "the Profiler RAM could be filled (16384 events) in as short a time as
  // 300 milliseconds" — under network load ours fills within a second.
  Testbed tb;
  tb.Arm();
  RunNetworkReceive(tb, Sec(5), 2 * kMiB, false);
  RawTrace raw = tb.StopAndUpload();
  EXPECT_TRUE(raw.overflowed);
  EXPECT_EQ(raw.events.size(), 16384u);
  DecodedTrace d = Decoder::Decode(raw, tb.tags());
  EXPECT_LT(d.ElapsedTotal(), Sec(1));
}

TEST(Integration, SelectiveMicroProfilingLimitsEvents) {
  // Compile only the VM module with profiling: the capture contains vm
  // functions and nothing else, stretching the RAM much further.
  Testbed tb;
  Kernel& k = tb.kernel();
  tb.instr().DisableAll();
  tb.instr().SetSubsysEnabled(Subsys::kVm, true);
  k.fs().InstallFile("/bin/test", PatternBytes(64 * 1024));
  tb.Arm();
  RunForkExec(tb, 3, Sec(10));
  RawTrace raw = tb.StopAndUpload();
  ASSERT_GT(raw.events.size(), 0u);
  DecodedTrace d = Decoder::Decode(raw, tb.tags());
  for (const auto& [name, stats] : d.per_function) {
    (void)stats;
    const FuncInfo* info = tb.instr().Find(name);
    ASSERT_NE(info, nullptr);
    EXPECT_EQ(info->subsys, Subsys::kVm) << name << " leaked into a VM-only capture";
  }
}

TEST(Integration, ProfiledAndUnprofiledKernelsAgreeOnResults) {
  // "No noticeable difference can be detected between a profiled and a
  // non-profiled kernel": the *work done* must be identical; only the time
  // differs by the trigger overhead.
  auto run_one = [](bool profiled) {
    TestbedConfig config;
    config.profiled = profiled;
    Testbed tb(config);
    NetReceiveResult r = RunNetworkReceive(tb, Sec(4), 128 * 1024);
    return r;
  };
  const NetReceiveResult with = run_one(true);
  const NetReceiveResult without = run_one(false);
  EXPECT_EQ(with.bytes_received, without.bytes_received);
  EXPECT_TRUE(with.integrity_ok);
  EXPECT_TRUE(without.integrity_ok);
  // Completion times within ~4%.
  ASSERT_NE(with.done_at, 0u);
  ASSERT_NE(without.done_at, 0u);
  const double ratio = static_cast<double>(with.done_at) / static_cast<double>(without.done_at);
  EXPECT_GT(ratio, 0.99);
  EXPECT_LT(ratio, 1.04);
}

TEST(Integration, EveryWorkloadDecodesCleanly) {
  // Sweep all workloads; each capture must satisfy the invariants.
  {
    Testbed tb;
    tb.Arm();
    RunNetworkReceive(tb, Sec(2), 64 * 1024, false);
    CheckCaptureInvariants(Decoder::Decode(tb.StopAndUpload(), tb.tags()));
  }
  {
    Testbed tb;
    tb.Arm();
    RunForkExec(tb, 2, Sec(5));
    CheckCaptureInvariants(Decoder::Decode(tb.StopAndUpload(), tb.tags()));
  }
  {
    Testbed tb;
    tb.Arm();
    RunFsWrite(tb, 256 * 1024, Sec(30));
    CheckCaptureInvariants(Decoder::Decode(tb.StopAndUpload(), tb.tags()));
  }
  {
    Testbed tb;
    tb.Arm();
    RunFsRandomReads(tb, 10, Sec(30));
    CheckCaptureInvariants(Decoder::Decode(tb.StopAndUpload(), tb.tags()));
  }
  {
    Testbed tb;
    tb.Arm();
    RunMixed(tb, Sec(2));
    CheckCaptureInvariants(Decoder::Decode(tb.StopAndUpload(), tb.tags()));
  }
}

TEST(Integration, ProfilerEventCountMatchesBusReads) {
  Testbed tb;
  Kernel& k = tb.kernel();
  const std::uint64_t reads0 = tb.machine().bus().eprom_read_count();
  tb.Arm();
  k.Run(Msec(500));
  RawTrace raw = tb.StopAndUpload();
  const std::uint64_t reads = tb.machine().bus().eprom_read_count() - reads0;
  EXPECT_EQ(raw.events.size(), reads);
}

TEST(Integration, FullKernelInstrumentationScale) {
  // The paper's kernel: 1392 C functions -> 2784 trigger points (+35 asm).
  // Ours is a miniature; verify the bookkeeping at our scale.
  Testbed tb;
  EXPECT_GT(tb.instr().function_count(), 90u);
  EXPECT_GE(tb.instr().inline_count(), 1u);
  // Every registered function has a tag-file entry and even entry tag.
  for (const TagEntry& e : tb.tags().entries()) {
    if (e.IsFunctionLike()) {
      EXPECT_EQ(e.tag % 2, 0u) << e.name;
    }
  }
}

}  // namespace
}  // namespace hwprof
