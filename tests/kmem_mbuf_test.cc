// Kernel allocators and mbuf machinery.

#include <gtest/gtest.h>

#include "src/kern/kmem.h"
#include "src/kern/mbuf.h"
#include "src/kern/user_env.h"
#include "src/workloads/testbed.h"

namespace hwprof {
namespace {

// Runs `body` inside a process context on a booted testbed.
void InProc(Testbed& tb, std::function<void(Kernel&)> body) {
  Kernel& k = tb.kernel();
  bool done = false;
  k.Spawn("t", [&, body = std::move(body)](UserEnv& env) {
    (void)env;
    body(k);
    done = true;
  });
  k.Run(Sec(10));
  ASSERT_TRUE(done) << "test body did not complete";
}

TEST(Kmem, MallocFreeBookkeeping) {
  Testbed tb;
  InProc(tb, [](Kernel& k) {
    const auto a = k.kmem().Malloc(128, "test");
    const auto b = k.kmem().Malloc(256, "test");
    EXPECT_EQ(k.kmem().live_allocations(), 2u);
    EXPECT_GE(k.kmem().bytes_allocated(), 384u);
    k.kmem().Free(a);
    k.kmem().Free(b);
    EXPECT_EQ(k.kmem().live_allocations(), 0u);
  });
}

TEST(KmemDeath, DoubleFreeAborts) {
  Testbed tb;
  Kernel& k = tb.kernel();
  k.Spawn("t", [&](UserEnv& env) {
    (void)env;
    const auto a = k.kmem().Malloc(128, "test");
    k.kmem().Free(a);
    k.kmem().Free(a);  // kernel bug: modelled as a panic
  });
  EXPECT_DEATH(k.Run(Msec(100)), "dead kernel allocation");
}

TEST(Kmem, MallocCostMatchesTable1) {
  Testbed tb;
  InProc(tb, [](Kernel& k) {
    const Nanoseconds t0 = k.Now();
    const auto a = k.kmem().Malloc(64, "x");
    const Nanoseconds malloc_time = k.Now() - t0;
    // Table 1: malloc ≈ 37 µs (we include the spl dance).
    EXPECT_GT(malloc_time, Usec(25));
    EXPECT_LT(malloc_time, Usec(65));
    k.kmem().Free(a);
  });
}

TEST(Kmem, KmemAllocCostMatchesTable1) {
  Testbed tb;
  InProc(tb, [](Kernel& k) {
    const Nanoseconds t0 = k.Now();
    const auto a = k.kmem().KmemAlloc(1);
    const Nanoseconds t = k.Now() - t0;
    // Table 1: kmem_alloc ≈ 801 µs.
    EXPECT_GT(t, Usec(500));
    EXPECT_LT(t, Usec(1100));
    k.kmem().KmemFree(a);
  });
}

// --- Mbufs -------------------------------------------------------------------------

TEST(Mbuf, SmallAndClusterCapacity) {
  Testbed tb;
  InProc(tb, [](Kernel& k) {
    Mbuf* m = k.mbufs().MGet(true);
    EXPECT_EQ(m->Capacity(), kMlen);
    k.mbufs().MClGet(m);
    EXPECT_EQ(m->Capacity(), kMclBytes);
    k.mbufs().MFreem(m);
    EXPECT_EQ(k.mbufs().live(), 0u);
  });
}

class MbufRoundTripTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MbufRoundTripTest, FromBytesToBytesPreservesPayload) {
  Testbed tb;
  const std::size_t size = GetParam();
  InProc(tb, [size](Kernel& k) {
    Bytes payload(size);
    for (std::size_t i = 0; i < size; ++i) {
      payload[i] = static_cast<std::uint8_t>(i * 7);
    }
    Mbuf* chain = k.mbufs().FromBytes(payload, false);
    EXPECT_EQ(MbufPool::ChainLen(chain), size);
    EXPECT_EQ(chain->pkthdr_len, size);
    EXPECT_EQ(MbufPool::ToBytes(chain), payload);
    k.mbufs().MFreem(chain);
    EXPECT_EQ(k.mbufs().live(), 0u);
  });
}

INSTANTIATE_TEST_SUITE_P(Sizes, MbufRoundTripTest,
                         ::testing::Values(0u, 1u, 111u, 112u, 113u, 1024u, 1025u, 1460u,
                                           1500u, 4000u));

TEST(Mbuf, AdjFrontTrimsAcrossMbufs) {
  Testbed tb;
  InProc(tb, [](Kernel& k) {
    Bytes payload(300);
    for (std::size_t i = 0; i < payload.size(); ++i) {
      payload[i] = static_cast<std::uint8_t>(i);
    }
    Mbuf* chain = k.mbufs().FromBytes(payload, false);
    chain = k.mbufs().AdjFront(chain, 150);
    const Bytes rest = MbufPool::ToBytes(chain);
    ASSERT_EQ(rest.size(), 150u);
    EXPECT_EQ(rest[0], static_cast<std::uint8_t>(150));
    k.mbufs().MFreem(chain);
  });
}

TEST(Mbuf, AdjFrontEntireChain) {
  Testbed tb;
  InProc(tb, [](Kernel& k) {
    Mbuf* chain = k.mbufs().FromBytes(Bytes(100, 1), false);
    chain = k.mbufs().AdjFront(chain, 100);
    EXPECT_EQ(chain, nullptr);
    EXPECT_EQ(k.mbufs().live(), 0u);
  });
}

TEST(Mbuf, ExternalIsaFlagPropagates) {
  Testbed tb;
  InProc(tb, [](Kernel& k) {
    Mbuf* chain = k.mbufs().FromBytes(Bytes(2000, 1), /*in_isa=*/true);
    for (Mbuf* m = chain; m != nullptr; m = m->next) {
      EXPECT_TRUE(m->in_isa_memory);
    }
    k.mbufs().MFreem(chain);
  });
}

TEST(IfQueue, EnqueueDequeueFifoWithDrops) {
  IfQueue q;
  q.maxlen = 2;
  Mbuf a;
  Mbuf b;
  Mbuf c;
  EXPECT_TRUE(q.Enqueue(&a));
  EXPECT_TRUE(q.Enqueue(&b));
  EXPECT_FALSE(q.Enqueue(&c));  // full
  EXPECT_EQ(q.drops, 1u);
  EXPECT_EQ(q.Dequeue(), &a);
  EXPECT_EQ(q.Dequeue(), &b);
  EXPECT_EQ(q.Dequeue(), nullptr);
  EXPECT_TRUE(q.Empty());
}

}  // namespace
}  // namespace hwprof
