// Lint fixture: spl-effect annotations — a declared raising helper, callers
// that balance or leak it, a stale annotation, and an undeclared restorer.
// Not compiled — parsed by lint_test.

#include "kern/kernel.h"

// hwprof-lint: spl-effect(+1) parks one raised level in the returned token
int RaiseNet(Kernel& k) {
  return k.spl().splnet();
}

// hwprof-lint: spl-effect(-1) pops the level RaiseNet() parked
void ReleaseNet(Kernel& k, int s) {
  k.spl().splx(s);
}

void BalancedCaller(Kernel& k) {
  const int s = RaiseNet(k);
  k.spl().splx(s);
}

void PairedCaller(Kernel& k) {
  const int s = RaiseNet(k);
  ReleaseNet(k, s);
}

void LeakyCaller(Kernel& k) {
  RaiseNet(k);
}

// hwprof-lint: spl-effect(+1) stale: the body below is balanced
void StaleAnnotation(Kernel& k) {
  const int s = k.spl().splnet();
  k.spl().splx(s);
}

void UndeclaredRestore(Kernel& k, int s) {
  k.spl().splx(s);
}
