// Lint fixture: instrumentation-balance violations. Not compiled — parsed by
// lint_test.

#include "instr/profile_scope.h"

void EarlyReturnSkipsExit(Machine& m, Instr& instr, FuncInfo* f, bool fail) {
  m.TriggerRead(instr.profile_base() + f->entry_tag);
  if (fail) {
    return;  // the exit emit below is skipped
  }
  m.TriggerRead(instr.profile_base() + f->exit_tag());
}

void OrphanExit(Machine& m, Instr& instr, FuncInfo* f) {
  m.TriggerRead(instr.profile_base() + f->exit_tag());
}

void UnknownTag(Machine& m, unsigned base, unsigned tag) {
  m.TriggerRead(base + tag);
}

// The RAII pair: entry in the constructor, exit in the destructor. The
// analyzer must pair these across the object's lifetime, not flag them.
class Scope {
 public:
  Scope(Machine& m, Instr& i, FuncInfo* f) : m_(m), i_(i), f_(f) {
    m_.TriggerRead(i_.profile_base() + f_->entry_tag);
  }
  ~Scope() {
    m_.TriggerRead(i_.profile_base() + f_->exit_tag());
  }

 private:
  Machine& m_;
  Instr& i_;
  FuncInfo* f_;
};
