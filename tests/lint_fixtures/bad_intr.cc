// Lint fixture: an interrupt-service routine that can reach a blocking
// call through a helper. Not compiled — parsed by lint_test.

#include "kern/kernel.h"

void DrainQueue(Kernel& k) {
  k.sched().Tsleep(&k, 0);
}

void DiskIntr(Kernel& k) {
  DrainQueue(k);
}

void NetIntr(Kernel& k) {
  k.sched().Wakeup(&k);
}
