// Lint fixture: spl-sleep violation. Not compiled — parsed by lint_test.

#include "kern/kernel.h"

void SleepUnderSpl(Kernel& k) {
  const int s = k.spl().splbio();
  k.sched().Tsleep(&k, 0);
  k.spl().splx(s);
}

void SleepAfterRestore(Kernel& k) {
  const int s = k.spl().splbio();
  k.spl().splx(s);
  k.sched().Tsleep(&k, 0);
}

void RawRegionYield(Kernel& k) {
  const auto prev = k.spl().RawRaise(3);
  k.sched().Preempt();
  k.spl().RawRestore(prev);
}
