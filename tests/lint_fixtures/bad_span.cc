// Lint fixture: telemetry-span balance violations. Not compiled — parsed by
// lint_test.

#include "obs/telemetry.h"

// Clean: one begin, an end on the early-return path and on the fall-through.
bool BalancedTwoEnds(Queue& q, Out* out) {
  OBS_SPAN_BEGIN(drain);
  if (!q.ready()) {
    OBS_SPAN_END(drain, "fixture.drain_poll_empty");
    return false;
  }
  q.pop(out);
  OBS_SPAN_END(drain, "fixture.drain_chunk");
  return true;
}

// Bad: the early return skips the end.
bool EarlyReturnSkipsEnd(Queue& q, Out* out) {
  OBS_SPAN_BEGIN(fetch);
  if (!q.ready()) {
    return false;  // span 'fetch' leaks here
  }
  q.pop(out);
  OBS_SPAN_END(fetch, "fixture.fetch");
  return true;
}

// Bad: no end on any path.
void NeverEnded(Queue& q) {
  OBS_SPAN_BEGIN(work);
  q.touch();
}

// Clean: nested spans closed in LIFO order.
void NestedSpans(Queue& q) {
  OBS_SPAN_BEGIN(outer);
  OBS_SPAN_BEGIN(inner);
  q.touch();
  OBS_SPAN_END(inner, "fixture.inner");
  OBS_SPAN_END(outer, "fixture.outer");
}
