// Lint fixture: spl-balance violations. Not compiled — parsed by lint_test.

#include "kern/spl.h"

int MissingSplxOnEarlyReturn(Spl& spl, bool fast) {
  const int s = spl.splnet();
  if (fast) {
    return -1;  // leaks the raised level
  }
  spl.splx(s);
  return 0;
}

void DiscardedRaise(Spl& spl) {
  spl.splbio();
}

int Balanced(Spl& spl, int mode) {
  const int s = spl.splimp();
  switch (mode) {
    case 0:
      spl.splx(s);
      return 0;
    default:
      break;
  }
  spl.splx(s);
  return 1;
}
