// Lint fixture: transitive spl-sleep violations through the call graph —
// the sleep is two calls away from the raise. Not compiled — parsed by
// lint_test.

#include "kern/kernel.h"

void SleepsDeep(Kernel& k) {
  k.sched().Tsleep(&k, 0);
}

void MiddleHelper(Kernel& k) {
  SleepsDeep(k);
}

void RaisedCaller(Kernel& k) {
  const int s = k.spl().splbio();
  MiddleHelper(k);
  k.spl().splx(s);
}

void RawRegionCaller(Kernel& k) {
  const auto prev = k.spl().RawRaise(3);
  MiddleHelper(k);
  k.spl().RawRestore(prev);
}

void BaseLevelCaller(Kernel& k) {
  MiddleHelper(k);
}
