// Lint fixture: disciplined code the analyzer must pass clean. Not compiled —
// parsed by lint_test.

#include "kern/kernel.h"

int BalancedRaise(Kernel& k, bool slow) {
  const int s = k.spl().splnet();
  int rc = 0;
  if (slow) {
    rc = -1;
  }
  k.spl().splx(s);
  return rc;
}

void BalancedLoop(Kernel& k, int n) {
  for (int i = 0; i < n; ++i) {
    const int s = k.spl().splbio();
    k.spl().splx(s);
  }
}

void NestedRaises(Kernel& k) {
  const int s = k.spl().splnet();
  const int t = k.spl().splimp();
  k.spl().splx(t);
  k.spl().splx(s);
}

void RawDispatch(Kernel& k) {
  const auto prev = k.spl().RawRaise(7);
  k.ServiceIrq(0);
  k.spl().RawRestore(prev);
}

void SleepAtBase(Kernel& k) {
  k.sched().Tsleep(&k, 0);
}

void Spl0Resets(Kernel& k) {
  k.spl().splhigh();  // hwprof-lint: suppress(spl-balance) fixture: spl0 below resets the level
  k.spl().spl0();
}

void EmitPair(Machine& m, Instr& instr, FuncInfo* f) {
  m.TriggerRead(instr.profile_base() + f->entry_tag);
  m.TriggerRead(instr.profile_base() + f->exit_tag());
}

void Register(Kernel& k) {
  k.RegFn("plainfn", Subsys::kLib);
  k.RegInline("inlfn", Subsys::kLib);
  k.RegFn("ctxfn", Subsys::kSched, true);
  Fiber::Switch(nullptr, nullptr);
}
