// Lint fixture: recursion cycles. An annotated raising recursion carries a
// level effect and must be reported; a balanced mutual recursion must not.
// Not compiled — parsed by lint_test.

#include "kern/kernel.h"

// hwprof-lint: spl-effect(+1) parks one raised level per invocation
int RecursiveRaise(Kernel& k, int n) {
  const int s = k.spl().splnet();
  if (n > 1) {
    RecursiveRaise(k, n - 1);
  }
  return s;
}

int PongPing(Kernel& k, int n);

int PingPong(Kernel& k, int n) {
  if (n <= 0) {
    return 0;
  }
  return PongPing(k, n - 1);
}

int PongPing(Kernel& k, int n) {
  if (n <= 0) {
    return 0;
  }
  return PingPong(k, n - 1);
}
