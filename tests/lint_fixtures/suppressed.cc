// Lint fixture: suppression handling. Not compiled — parsed by lint_test.

#include "kern/kernel.h"

void SuppressedDiscard(Kernel& k) {
  // hwprof-lint: suppress(spl-balance) fixture: level intentionally pinned
  k.spl().splbio();
}

void SuppressedSleep(Kernel& k) {
  const int s = k.spl().splbio();
  k.sched().Tsleep(&k, 0);  // hwprof-lint: suppress(spl-sleep) fixture: wakeup path restores the level
  k.spl().splx(s);
}

void ReasonlessSuppression(Kernel& k) {
  // hwprof-lint: suppress(spl-balance)
  k.spl().splbio();
}

void UnknownRuleSuppression(Kernel& k) {
  // hwprof-lint: suppress(not-a-rule) this rule does not exist
  k.spl().spl0();
}
