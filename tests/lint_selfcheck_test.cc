// Runs hwprof_lint over the real source tree — the same invocation CI's lint
// job performs — and requires a zero-unsuppressed baseline. Every waiver in
// src/ carries an inline justification; anything new must be fixed or
// explicitly suppressed, or this test (and CI) goes red.

#include <gtest/gtest.h>

#include <string>

#include "src/lint/diagnostics.h"
#include "src/lint/lint.h"

namespace hwprof::lint {
namespace {

LintResult LintTree() {
  LintConfig config;
  const std::string root = HWPROF_SOURCE_ROOT;
  // The whole tree, including src/lint itself — the same scope as the
  // analyzer's default invocation and CI's lint job.
  config.paths = {root + "/src"};
  return RunLint(config);
}

TEST(LintSelfCheck, SourceTreeHasZeroUnsuppressedFindings) {
  const LintResult result = LintTree();
  for (const std::string& error : result.errors) {
    ADD_FAILURE() << error;
  }
  for (const Finding& f : result.findings) {
    if (!f.suppressed) {
      ADD_FAILURE() << FormatFinding(f);
    }
  }
  EXPECT_EQ(result.unsuppressed(), 0u);
}

TEST(LintSelfCheck, AnalyzerActuallySawTheTree) {
  const LintResult result = LintTree();
  // A parser regression that silently skipped everything would also produce
  // zero findings; pin the analysis depth instead of just the verdict.
  std::size_t functions = 0;
  for (const SourceFile& file : result.sources) {
    functions += file.functions.size();
  }
  EXPECT_GT(result.sources.size(), 20u);
  EXPECT_GT(functions, 200u);
  // The scheduler's context-switch instrumentation and the spl entry points
  // must be in the exported call-structure model.
  EXPECT_TRUE(result.model.by_name.count("swtch"));
  EXPECT_TRUE(result.model.by_name.count("splnet"));
  EXPECT_TRUE(result.model.by_name.count("hardclock"));
  // The known-safe waivers (tsleep under spl, the scheduler's one-way switch
  // emits) are present and justified.
  std::size_t suppressed = 0;
  for (const Finding& f : result.findings) {
    if (f.suppressed) {
      EXPECT_FALSE(f.suppress_reason.empty()) << FormatFinding(f);
      ++suppressed;
    }
  }
  EXPECT_GT(suppressed, 5u);
}

TEST(LintSelfCheck, CallGraphSummariesCoverTheTree) {
  const LintResult result = LintTree();
  // The whole-program pass must have resolved the kernel's own call chains:
  // Fs::Biowait parks the process on Tsleep, so its summary — and that of
  // everything that can reach it — carries may_sleep with a concrete chain.
  const auto& summaries = result.graph.summaries();
  const auto biowait = summaries.find("Fs::Biowait");
  ASSERT_NE(biowait, summaries.end());
  EXPECT_TRUE(biowait->second.may_sleep);
  ASSERT_FALSE(biowait->second.sleep_path.empty());
  EXPECT_EQ(biowait->second.sleep_path.back().what, "Tsleep");
  const auto getblk = summaries.find("Fs::GetBlk");
  ASSERT_NE(getblk, summaries.end());
  EXPECT_TRUE(getblk->second.may_sleep);
  // The one finding that chain produces is the justified waiver in fs.cc.
  bool waived_transitive = false;
  for (const Finding& f : result.findings) {
    if (f.rule == "spl-sleep-transitive") {
      EXPECT_TRUE(f.suppressed) << FormatFinding(f);
      waived_transitive = waived_transitive || f.suppressed;
    }
    // The new whole-program rules hold a clean baseline over the tree.
    EXPECT_NE(f.rule, "intr-blocking") << FormatFinding(f);
    EXPECT_NE(f.rule, "call-cycle") << FormatFinding(f);
    EXPECT_NE(f.rule, "bad-annotation") << FormatFinding(f);
  }
  EXPECT_TRUE(waived_transitive);
  // The solver converged rather than hitting its round cap.
  EXPECT_GE(result.graph.solver_rounds(), 1);
  EXPECT_LT(result.graph.solver_rounds(), 32);
}

}  // namespace
}  // namespace hwprof::lint
