// Runs hwprof_lint over the real source tree — the same invocation CI's lint
// job performs — and requires a zero-unsuppressed baseline. Every waiver in
// src/ carries an inline justification; anything new must be fixed or
// explicitly suppressed, or this test (and CI) goes red.

#include <gtest/gtest.h>

#include <string>

#include "src/lint/diagnostics.h"
#include "src/lint/lint.h"

namespace hwprof::lint {
namespace {

LintResult LintTree() {
  LintConfig config;
  const std::string root = HWPROF_SOURCE_ROOT;
  config.paths = {root + "/src/kern", root + "/src/profhw", root + "/src/instr",
                  root + "/src/obs"};
  return RunLint(config);
}

TEST(LintSelfCheck, SourceTreeHasZeroUnsuppressedFindings) {
  const LintResult result = LintTree();
  for (const std::string& error : result.errors) {
    ADD_FAILURE() << error;
  }
  for (const Finding& f : result.findings) {
    if (!f.suppressed) {
      ADD_FAILURE() << FormatFinding(f);
    }
  }
  EXPECT_EQ(result.unsuppressed(), 0u);
}

TEST(LintSelfCheck, AnalyzerActuallySawTheTree) {
  const LintResult result = LintTree();
  // A parser regression that silently skipped everything would also produce
  // zero findings; pin the analysis depth instead of just the verdict.
  std::size_t functions = 0;
  for (const SourceFile& file : result.sources) {
    functions += file.functions.size();
  }
  EXPECT_GT(result.sources.size(), 20u);
  EXPECT_GT(functions, 200u);
  // The scheduler's context-switch instrumentation and the spl entry points
  // must be in the exported call-structure model.
  EXPECT_TRUE(result.model.by_name.count("swtch"));
  EXPECT_TRUE(result.model.by_name.count("splnet"));
  EXPECT_TRUE(result.model.by_name.count("hardclock"));
  // The known-safe waivers (tsleep under spl, the scheduler's one-way switch
  // emits) are present and justified.
  std::size_t suppressed = 0;
  for (const Finding& f : result.findings) {
    if (f.suppressed) {
      EXPECT_FALSE(f.suppress_reason.empty()) << FormatFinding(f);
      ++suppressed;
    }
  }
  EXPECT_GT(suppressed, 5u);
}

}  // namespace
}  // namespace hwprof::lint
