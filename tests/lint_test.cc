// hwprof_lint: lexer, source model, rule, tag-model, suppression, JSON
// round-trip, and trace cross-check tests, driven by the fixtures under
// tests/lint_fixtures/ (known-good and known-bad functions the analyzer must
// classify correctly).

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/analysis/decoder.h"
#include "src/instr/tag_file.h"
#include "src/lint/diagnostics.h"
#include "src/lint/lexer.h"
#include "src/lint/lint.h"
#include "src/lint/rules.h"
#include "src/lint/source_model.h"
#include "src/lint/trace_check.h"

namespace hwprof::lint {
namespace {

std::string FixturePath(const std::string& name) {
  return std::string(HWPROF_TEST_DIR) + "/lint_fixtures/" + name;
}

std::string ReadFixture(const std::string& name) {
  std::ifstream in(FixturePath(name), std::ios::binary);
  EXPECT_TRUE(in) << "missing fixture " << name;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

LintResult LintFixture(const std::string& name) {
  LintConfig config;
  config.paths.push_back(FixturePath(name));
  return RunLint(config);
}

std::vector<const Finding*> ByRule(const LintResult& result, const std::string& rule) {
  std::vector<const Finding*> out;
  for (const Finding& f : result.findings) {
    if (f.rule == rule) {
      out.push_back(&f);
    }
  }
  return out;
}

// --- lexer -------------------------------------------------------------------

TEST(LintLexer, TokensCommentsAndDirectives) {
  const LexedFile lexed = Lex(
      "#include <x.h>\n"
      "#define M(a) \\\n  (a + 1)\n"
      "int f(int a) { return a <<= 2; }  // trailing\n"
      "/* block\n comment */ int g;\n");
  // Macro bodies must not leak tokens into the stream.
  for (const Token& t : lexed.tokens) {
    EXPECT_NE(t.text, "M");
    EXPECT_NE(t.text, "include");
  }
  ASSERT_EQ(lexed.comments.size(), 2u);
  EXPECT_EQ(lexed.comments[0].line, 4);
  EXPECT_EQ(lexed.comments[0].text, " trailing");
  // Maximal munch: "<<=" is one token, not three.
  const auto it = std::find_if(lexed.tokens.begin(), lexed.tokens.end(),
                               [](const Token& t) { return t.text == "<<="; });
  EXPECT_NE(it, lexed.tokens.end());
  // Line numbers survive the multi-line directive.
  const auto g = std::find_if(lexed.tokens.begin(), lexed.tokens.end(),
                              [](const Token& t) { return t.text == "g"; });
  ASSERT_NE(g, lexed.tokens.end());
  EXPECT_EQ(g->line, 6);
}

TEST(LintLexer, StringsAndChars) {
  const LexedFile lexed = Lex("auto s = \"a\\\"b\"; char c = '\\n';");
  ASSERT_GE(lexed.tokens.size(), 2u);
  const auto str = std::find_if(lexed.tokens.begin(), lexed.tokens.end(),
                                [](const Token& t) { return t.kind == TokKind::kString; });
  ASSERT_NE(str, lexed.tokens.end());
  EXPECT_EQ(str->text, "a\"b");
}

TEST(LintLexer, RawStringsAreOneToken) {
  const LexedFile lexed = Lex(
      "auto s = R\"(k.spl().splbio();)\";\n"
      "auto d = R\"xy(a)\" still inside )xy\";\n"
      "auto m = R\"(line one\nline two)\"; int after = 0;\n");
  std::vector<std::string> strings;
  for (const Token& t : lexed.tokens) {
    // Code-like text inside the raw bodies must not leak identifier tokens.
    EXPECT_NE(t.text, "splbio");
    EXPECT_NE(t.text, "still");
    if (t.kind == TokKind::kString) {
      strings.push_back(t.text);
    }
  }
  ASSERT_EQ(strings.size(), 3u);
  EXPECT_EQ(strings[0], "k.spl().splbio();");
  // The )" inside a delimited raw string does not close it.
  EXPECT_EQ(strings[1], "a)\" still inside ");
  EXPECT_EQ(strings[2], "line one\nline two");
  // Newlines inside the raw body still advance the line counter.
  const auto after = std::find_if(lexed.tokens.begin(), lexed.tokens.end(),
                                  [](const Token& t) { return t.text == "after"; });
  ASSERT_NE(after, lexed.tokens.end());
  EXPECT_EQ(after->line, 4);
}

TEST(LintLexer, SplicedLineCommentStaysAComment) {
  const LexedFile lexed = Lex(
      "// first \\\nk.spl().splbio(); still comment\nint y;\n");
  ASSERT_EQ(lexed.comments.size(), 1u);
  EXPECT_EQ(lexed.comments[0].line, 1);
  EXPECT_NE(lexed.comments[0].text.find("still comment"), std::string::npos);
  // The spliced line must not be lexed as code.
  for (const Token& t : lexed.tokens) {
    EXPECT_NE(t.text, "splbio");
  }
  const auto y = std::find_if(lexed.tokens.begin(), lexed.tokens.end(),
                              [](const Token& t) { return t.text == "y"; });
  ASSERT_NE(y, lexed.tokens.end());
  EXPECT_EQ(y->line, 3);
}

TEST(LintLexer, RawStringInFunctionFabricatesNoFindings) {
  const LintResult result = LintText({{"raw.cc",
      "const char* Banner() {\n"
      "  return R\"(const int s = k.spl().splbio();)\";\n"
      "}\n"}});
  EXPECT_TRUE(result.findings.empty());
}

// --- source model ------------------------------------------------------------

TEST(LintModel, FunctionsRegistrationsSuppressions) {
  const SourceFile file = AnalyzeSource("mem.cc", ReadFixture("good_kernel.cc"));
  std::vector<std::string> names;
  for (const FunctionModel& fn : file.functions) {
    names.push_back(fn.name);
  }
  EXPECT_NE(std::find(names.begin(), names.end(), "BalancedRaise"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "NestedRaises"), names.end());
  ASSERT_EQ(file.registrations.size(), 3u);
  EXPECT_EQ(file.registrations[0].name, "plainfn");
  EXPECT_EQ(file.registrations[0].kind, TagKind::kFunction);
  EXPECT_EQ(file.registrations[1].name, "inlfn");
  EXPECT_EQ(file.registrations[1].kind, TagKind::kInline);
  EXPECT_EQ(file.registrations[2].name, "ctxfn");
  EXPECT_EQ(file.registrations[2].kind, TagKind::kContextSwitch);
  EXPECT_TRUE(file.has_fiber_switch);
  ASSERT_EQ(file.suppressions.size(), 1u);
  EXPECT_EQ(file.suppressions[0].rules, std::vector<std::string>{"spl-balance"});
}

TEST(LintModel, CtorDtorQualifiedNames) {
  const SourceFile file = AnalyzeSource("scope.cc", ReadFixture("bad_instr.cc"));
  std::vector<std::string> names;
  for (const FunctionModel& fn : file.functions) {
    names.push_back(fn.name);
  }
  EXPECT_NE(std::find(names.begin(), names.end(), "Scope::Scope"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "Scope::~Scope"), names.end());
}

// --- spl rules ---------------------------------------------------------------

TEST(LintRules, SplBalanceFixture) {
  const LintResult result = LintFixture("bad_spl.cc");
  const auto findings = ByRule(result, "spl-balance");
  ASSERT_EQ(findings.size(), 2u);
  // The leak is attributed to the raise, not the return.
  EXPECT_EQ(findings[0]->line, 6);
  EXPECT_NE(findings[0]->message.find("splnet"), std::string::npos);
  EXPECT_EQ(findings[1]->line, 15);
  EXPECT_NE(findings[1]->message.find("discarded"), std::string::npos);
  // Balanced() — including the switch with a returning case — stays clean.
  EXPECT_EQ(result.unsuppressed(), 2u);
}

TEST(LintRules, SplSleepFixture) {
  const LintResult result = LintFixture("bad_sleep.cc");
  const auto findings = ByRule(result, "spl-sleep");
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0]->line, 7);   // Tsleep under splbio
  EXPECT_EQ(findings[1]->line, 19);  // Preempt inside a RawRaise region
  EXPECT_EQ(result.unsuppressed(), 2u);  // SleepAfterRestore is clean
}

// --- whole-program rules -----------------------------------------------------

TEST(LintGraph, TransitiveSleepDepthThree) {
  const LintResult result = LintFixture("bad_transitive.cc");
  const auto findings = ByRule(result, "spl-sleep-transitive");
  ASSERT_EQ(findings.size(), 2u);
  // The raise-holding caller, attributed to the call site two hops above
  // the sleep, with the full chain in the note.
  EXPECT_EQ(findings[0]->line, 17);
  EXPECT_NE(findings[0]->message.find("MiddleHelper"), std::string::npos);
  EXPECT_NE(findings[0]->message.find("splbio"), std::string::npos);
  EXPECT_NE(findings[0]->note.find("call chain: MiddleHelper -> SleepsDeep ("),
            std::string::npos);
  EXPECT_NE(findings[0]->note.find(":12) -> Tsleep ("), std::string::npos);
  EXPECT_NE(findings[0]->note.find(":8)"), std::string::npos);
  // The RawRaise-region variant.
  EXPECT_EQ(findings[1]->line, 23);
  EXPECT_NE(findings[1]->message.find("RawRaise"), std::string::npos);
  // BaseLevelCaller reaches the same sleep with nothing raised: clean.
  EXPECT_EQ(result.unsuppressed(), 2u);
  // The summaries behind the findings.
  const FuncSummary& middle = result.graph.summaries().at("MiddleHelper");
  EXPECT_TRUE(middle.may_sleep);
  ASSERT_EQ(middle.sleep_path.size(), 2u);
  EXPECT_EQ(middle.sleep_path[0].what, "SleepsDeep");
  EXPECT_EQ(middle.sleep_path[1].what, "Tsleep");
  const FuncSummary& raised = result.graph.summaries().at("RaisedCaller");
  EXPECT_TRUE(raised.may_sleep);
  EXPECT_EQ(raised.spl_lo, 0);  // balanced despite the raise
  EXPECT_EQ(raised.spl_hi, 0);
}

TEST(LintGraph, InterruptReachableSleeper) {
  const LintResult result = LintFixture("bad_intr.cc");
  const auto findings = ByRule(result, "intr-blocking");
  ASSERT_EQ(findings.size(), 1u);
  // Attributed to the first hop of the chain inside the handler.
  EXPECT_EQ(findings[0]->line, 11);
  EXPECT_NE(findings[0]->message.find("DiskIntr"), std::string::npos);
  EXPECT_NE(findings[0]->note.find("call chain: DiskIntr -> DrainQueue ("),
            std::string::npos);
  EXPECT_NE(findings[0]->note.find("-> Tsleep ("), std::string::npos);
  // NetIntr only wakes; it must not be flagged.
  EXPECT_EQ(findings[0]->message.find("NetIntr"), std::string::npos);
  EXPECT_EQ(result.unsuppressed(), 1u);
}

TEST(LintGraph, AnnotatedHelperContracts) {
  const LintResult result = LintFixture("annotated_helper.cc");
  // A caller that forgets the level the annotated helper parked.
  const auto balance = ByRule(result, "spl-balance");
  ASSERT_EQ(balance.size(), 1u);
  EXPECT_EQ(balance[0]->line, 28);
  EXPECT_NE(balance[0]->message.find("RaiseNet"), std::string::npos);
  EXPECT_NE(balance[0]->note.find("LeakyCaller"), std::string::npos);
  // A stale annotation and an undeclared restorer.
  const auto transitive = ByRule(result, "spl-imbalance-transitive");
  ASSERT_EQ(transitive.size(), 2u);
  EXPECT_EQ(transitive[0]->line, 32);
  EXPECT_NE(transitive[0]->message.find("spl-effect(+1)"), std::string::npos);
  EXPECT_NE(transitive[0]->message.find("[0, 0]"), std::string::npos);
  EXPECT_EQ(transitive[1]->line, 37);
  EXPECT_NE(transitive[1]->message.find("without declaring"), std::string::npos);
  EXPECT_NE(transitive[1]->message.find("spl-effect(-1)"), std::string::npos);
  // BalancedCaller and PairedCaller honor the contracts: nothing else fires.
  EXPECT_EQ(result.unsuppressed(), 3u);
  // The helpers' computed summaries match their declarations.
  const FuncSummary& raise = result.graph.summaries().at("RaiseNet");
  EXPECT_EQ(raise.spl_lo, 1);
  EXPECT_EQ(raise.spl_hi, 1);
  EXPECT_TRUE(raise.has_annotation);
  const FuncSummary& release = result.graph.summaries().at("ReleaseNet");
  EXPECT_EQ(release.spl_lo, -1);
  EXPECT_EQ(release.spl_hi, -1);
}

TEST(LintGraph, RecursionCycles) {
  const LintResult result = LintFixture("recursion.cc");
  // The annotated self-recursion carries a level effect: reported once.
  const auto cycles = ByRule(result, "call-cycle");
  ASSERT_EQ(cycles.size(), 1u);
  EXPECT_NE(cycles[0]->note.find("RecursiveRaise -> RecursiveRaise"),
            std::string::npos);
  EXPECT_EQ(cycles[0]->note.find("PingPong"), std::string::npos);
  // Its fixed +1 annotation cannot hold across iterations: the solver
  // widens the interval and the contract check reports the disagreement.
  const auto transitive = ByRule(result, "spl-imbalance-transitive");
  ASSERT_EQ(transitive.size(), 1u);
  EXPECT_EQ(transitive[0]->line, 8);
  EXPECT_NE(transitive[0]->message.find("[1, 2]"), std::string::npos);
  // The balanced mutual recursion is detected as a cycle but not reported.
  bool pingpong_cycle = false;
  for (const auto& cycle : result.graph.cycles()) {
    if (cycle == std::vector<std::string>{"PingPong", "PongPing"}) {
      pingpong_cycle = true;
    }
  }
  EXPECT_TRUE(pingpong_cycle);
  EXPECT_TRUE(result.graph.summaries().at("PingPong").in_cycle);
  EXPECT_EQ(result.unsuppressed(), 2u);
}

TEST(LintGraph, SummariesAreFileOrderIndependent) {
  // The same program split across two files, analyzed in both orders: the
  // Jacobi solver and sorted node iteration must make results identical.
  const std::pair<std::string, std::string> a{
      "a.cc", "void SleepsDeep(Kernel& k) { k.sched().Tsleep(&k, 0); }\n"};
  const std::pair<std::string, std::string> b{
      "b.cc",
      "void MiddleHelper(Kernel& k) { SleepsDeep(k); }\n"
      "void RaisedCaller(Kernel& k) {\n"
      "  const int s = k.spl().splbio();\n"
      "  MiddleHelper(k);\n"
      "  k.spl().splx(s);\n"
      "}\n"};
  const LintResult ab = LintText({a, b});
  const LintResult ba = LintText({b, a});
  EXPECT_EQ(FindingsToJson(ab.findings), FindingsToJson(ba.findings));
  EXPECT_EQ(CallGraphToJson(ab.graph), CallGraphToJson(ba.graph));
  // And the cross-file chain is found either way.
  ASSERT_EQ(ByRule(ab, "spl-sleep-transitive").size(), 1u);
  ASSERT_EQ(ByRule(ba, "spl-sleep-transitive").size(), 1u);
  EXPECT_EQ(ByRule(ab, "spl-sleep-transitive")[0]->line, 4);
}

TEST(LintGraph, ExternalCalleesAreNeutral) {
  // An unresolved callee must not fabricate sleep or level effects.
  const LintResult result = LintText({{"ext.cc",
      "void CallsLibrary(Kernel& k) {\n"
      "  const int s = k.spl().splbio();\n"
      "  SomeLibraryRoutine(&k);\n"
      "  k.spl().splx(s);\n"
      "}\n"}});
  EXPECT_EQ(result.unsuppressed(), 0u);
  EXPECT_EQ(result.graph.EffectiveSummary("SomeLibraryRoutine", "CallsLibrary"),
            nullptr);
}

// --- instrumentation rules ---------------------------------------------------

TEST(LintRules, InstrBalanceFixture) {
  const LintResult result = LintFixture("bad_instr.cc");
  const auto balance = ByRule(result, "instr-balance");
  ASSERT_EQ(balance.size(), 2u);
  EXPECT_EQ(balance[0]->line, 7);  // entry emit with a skipping early return
  EXPECT_NE(balance[0]->message.find("EarlyReturnSkipsExit"), std::string::npos);
  EXPECT_EQ(balance[1]->line, 15);  // bare exit emit
  EXPECT_NE(balance[1]->message.find("OrphanExit"), std::string::npos);
  const auto raw = ByRule(result, "instr-raw-tag");
  ASSERT_EQ(raw.size(), 1u);
  EXPECT_EQ(raw[0]->line, 19);
  // Scope's ctor/dtor pair must NOT be flagged.
  for (const Finding* f : balance) {
    EXPECT_EQ(f->message.find("Scope"), std::string::npos) << f->message;
  }
}

// --- telemetry span rule -----------------------------------------------------

TEST(LintRules, ObsSpanBalanceFixture) {
  const LintResult result = LintFixture("bad_span.cc");
  const auto findings = ByRule(result, "obs-span-balance");
  ASSERT_EQ(findings.size(), 2u);
  // Attributed to the OBS_SPAN_BEGIN, naming the leaked token.
  EXPECT_EQ(findings[0]->line, 20);
  EXPECT_NE(findings[0]->message.find("'fetch'"), std::string::npos);
  EXPECT_NE(findings[0]->note.find("EarlyReturnSkipsEnd"), std::string::npos);
  EXPECT_EQ(findings[1]->line, 31);
  EXPECT_NE(findings[1]->message.find("'work'"), std::string::npos);
  // BalancedTwoEnds (one begin, an end per path) and NestedSpans stay clean.
  EXPECT_EQ(result.unsuppressed(), 2u);
}

// --- suppressions ------------------------------------------------------------

TEST(LintRules, SuppressionFixture) {
  const LintResult result = LintFixture("suppressed.cc");
  std::size_t suppressed = 0;
  for (const Finding& f : result.findings) {
    if (f.suppressed) {
      ++suppressed;
      EXPECT_FALSE(f.suppress_reason.empty());
    }
  }
  EXPECT_EQ(suppressed, 2u);  // the discard and the trailing-comment sleep
  // A reason-less suppression is rejected: it reports bad-suppression AND
  // leaves its target finding live.
  const auto bad = ByRule(result, "bad-suppression");
  ASSERT_EQ(bad.size(), 2u);
  EXPECT_EQ(bad[0]->line, 17);
  EXPECT_EQ(bad[1]->line, 22);
  const auto live = ByRule(result, "spl-balance");
  bool found_live = false;
  for (const Finding* f : live) {
    if (!f->suppressed) {
      EXPECT_EQ(f->line, 18);
      found_live = true;
    }
  }
  EXPECT_TRUE(found_live);
}

TEST(LintRules, GoodFixtureIsClean) {
  const LintResult result = LintFixture("good_kernel.cc");
  for (const Finding& f : result.findings) {
    EXPECT_TRUE(f.suppressed) << FormatFinding(f);
  }
  EXPECT_EQ(result.unsuppressed(), 0u);
}

// --- registrations across files ----------------------------------------------

TEST(LintRules, RegConflictAcrossFiles) {
  const LintResult result = LintText({
      {"a.cc", "void A(Kernel& k) { k.RegFn(\"dup\", Subsys::kLib); }\n"},
      {"b.cc", "void B(Kernel& k) { k.RegInline(\"dup\", Subsys::kLib); }\n"},
  });
  const auto findings = ByRule(result, "reg-conflict");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0]->file, "b.cc");
  EXPECT_NE(findings[0]->note.find("a.cc"), std::string::npos);
}

TEST(LintRules, ContextSwitchRegistrationNeedsFiberSwitch) {
  const LintResult result = LintText({
      {"noswtch.cc", "void R(Kernel& k) { k.RegFn(\"sw\", Subsys::kSched, true); }\n"},
  });
  const auto findings = ByRule(result, "tag-ctx");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(findings[0]->message.find("Fiber::Switch"), std::string::npos);
}

// --- tag-file checks ---------------------------------------------------------

TEST(LintTags, ParseFindingsCarryLines) {
  const LintResult result = LintText({}, ReadFixture("bad_tags.tags"), "bad_tags.tags");
  const auto findings = ByRule(result, "tag-parse");
  std::vector<int> lines;
  for (const Finding* f : findings) {
    EXPECT_EQ(f->file, "bad_tags.tags");
    lines.push_back(f->line);
  }
  // duplicate name, odd tag, duplicate tag, inline collision, bad number,
  // missing slash — each attributed to its own line.
  EXPECT_EQ(lines, (std::vector<int>{3, 4, 5, 7, 8, 9}));
}

TEST(LintTags, ModelCrossChecks) {
  const LintResult result = LintText(
      {{"reg.cc", ReadFixture("good_kernel.cc")}},
      ReadFixture("bad_ctx.tags"), "bad_ctx.tags");
  const auto ctx = ByRule(result, "tag-ctx");
  ASSERT_EQ(ctx.size(), 3u);
  EXPECT_EQ(ctx[0]->line, 2);  // plainfn/600! — not a context-switch function
  EXPECT_EQ(ctx[1]->line, 4);  // ctxfn registered '!' but entry lacks marker
  EXPECT_EQ(ctx[2]->line, 5);  // bogus/700! — registered nowhere
  const auto model = ByRule(result, "tag-model");
  ASSERT_EQ(model.size(), 1u);
  EXPECT_EQ(model[0]->line, 3);  // inlfn registered inline, tagged as a pair
}

// --- JSON round trip ---------------------------------------------------------

TEST(LintJson, FindingsRoundTrip) {
  const LintResult result = LintFixture("bad_spl.cc");
  ASSERT_FALSE(result.findings.empty());
  const std::string json = FindingsToJson(result.findings);
  std::vector<Finding> parsed;
  std::string error;
  ASSERT_TRUE(FindingsFromJson(json, &parsed, &error)) << error;
  ASSERT_EQ(parsed.size(), result.findings.size());
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    EXPECT_EQ(parsed[i].rule, result.findings[i].rule);
    EXPECT_EQ(parsed[i].file, result.findings[i].file);
    EXPECT_EQ(parsed[i].line, result.findings[i].line);
    EXPECT_EQ(parsed[i].message, result.findings[i].message);
    EXPECT_EQ(parsed[i].suppressed, result.findings[i].suppressed);
  }
}

TEST(LintJson, EscapesSurviveRoundTrip) {
  std::vector<Finding> in(1);
  in[0].rule = "tag-parse";
  in[0].file = "a\\b.cc";
  in[0].line = 3;
  in[0].message = "quote \" tab \t newline \n ctl \x01 done";
  const std::string json = FindingsToJson(in);
  std::vector<Finding> out;
  std::string error;
  ASSERT_TRUE(FindingsFromJson(json, &out, &error)) << error;
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].file, in[0].file);
  EXPECT_EQ(out[0].message, in[0].message);
}

TEST(LintJson, SarifCarriesRulesAndSuppressions) {
  const LintResult result = LintFixture("suppressed.cc");
  const std::string sarif = FindingsToSarif(result.findings);
  EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
  // The full rule catalog rides along, including the whole-program rules.
  EXPECT_NE(sarif.find("{\"id\": \"spl-sleep-transitive\""), std::string::npos);
  EXPECT_NE(sarif.find("{\"id\": \"intr-blocking\""), std::string::npos);
  EXPECT_NE(sarif.find("{\"id\": \"call-cycle\""), std::string::npos);
  // Suppressed findings are carried as inSource suppressions, not dropped.
  EXPECT_NE(sarif.find("\"suppressions\": [{\"kind\": \"inSource\""),
            std::string::npos);
  EXPECT_NE(sarif.find("\"startLine\": "), std::string::npos);
}

TEST(LintJson, MalformedInputRejected) {
  std::vector<Finding> out;
  std::string error;
  EXPECT_FALSE(FindingsFromJson("{\"findings\": [", &out, &error));
  EXPECT_FALSE(error.empty());
}

// --- call-structure model and trace cross-check ------------------------------

TEST(LintTrace, ModelExport) {
  const LintResult result = LintText({{"reg.cc", ReadFixture("good_kernel.cc")}});
  ASSERT_EQ(result.model.by_name.size(), 3u);
  EXPECT_EQ(result.model.by_name.at("ctxfn").kind, TagKind::kContextSwitch);
  const std::string json = ModelToJson(result.model);
  EXPECT_NE(json.find("\"name\": \"plainfn\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\": \"inline\""), std::string::npos);
  EXPECT_NE(json.find("\"file\": \"reg.cc\""), std::string::npos);
}

TEST(LintTrace, CrossCheckAttributesAnomalies) {
  const LintResult lint = LintText({{"reg.cc", ReadFixture("good_kernel.cc")}});
  TagFile names;
  ASSERT_TRUE(names.AddFunction("plainfn", 600));
  ASSERT_TRUE(names.AddFunction("ctxfn", 604, /*context_switch=*/true));

  ASSERT_TRUE(names.AddFunction("inlfn", 606));

  RawTrace raw;
  raw.events.push_back(RawEvent{600, 10});  // plainfn entry
  raw.events.push_back(RawEvent{602, 20});  // unknown tag (neighbor of 601/603)
  raw.events.push_back(RawEvent{606, 25});  // inlfn entry, nested in plainfn
  raw.events.push_back(RawEvent{601, 30});  // plainfn exit: force-closes inlfn
  raw.events.push_back(RawEvent{601, 40});  // orphan exit
  const DecodedTrace trace = Decoder::Decode(raw, names);
  EXPECT_EQ(trace.unknown_tags, 1u);
  EXPECT_EQ(trace.orphan_exits, 1u);
  EXPECT_GE(trace.unclosed_entries, 1u);

  std::vector<Finding> findings;
  CrossCheckTrace(trace, names, lint.model, &findings);
  bool unknown = false, orphan = false, unclosed = false;
  for (const Finding& f : findings) {
    if (f.rule == "trace-unknown-tag") {
      unknown = true;
      // Attributed to plainfn's registration site via the neighboring tag.
      EXPECT_EQ(f.file, "reg.cc");
      EXPECT_NE(f.note.find("plainfn"), std::string::npos);
    } else if (f.rule == "trace-orphan-exit") {
      orphan = true;
      EXPECT_EQ(f.file, "reg.cc");
      EXPECT_NE(f.message.find("plainfn"), std::string::npos);
    } else if (f.rule == "trace-unclosed-entry") {
      unclosed = true;
      // The mid-trace force-close of inlfn, attributed to its registration.
      EXPECT_EQ(f.file, "reg.cc");
      EXPECT_NE(f.message.find("inlfn"), std::string::npos);
    }
  }
  EXPECT_TRUE(unknown);
  EXPECT_TRUE(orphan);
  EXPECT_TRUE(unclosed);
}

TEST(LintTrace, ShardBoundaryCutIsNotAnAnomaly) {
  const LintResult lint = LintText({{"reg.cc", ReadFixture("good_kernel.cc")}});
  TagFile names;
  ASSERT_TRUE(names.AddFunction("plainfn", 600));

  // A capture (or analysis shard) that begins mid-call: the first event is
  // the exit of a call opened before the cut. Like end-of-capture
  // truncation, that is how every shard after the first starts — the
  // cross-check must not report it. A later orphan exit of the *same*
  // function after balanced activity is still a genuine anomaly.
  RawTrace raw;
  raw.events.push_back(RawEvent{601, 10});  // exit of a pre-cut call
  raw.events.push_back(RawEvent{600, 20});  // balanced pair
  raw.events.push_back(RawEvent{601, 30});
  const DecodedTrace trace = Decoder::Decode(raw, names);
  EXPECT_EQ(trace.orphan_exits, 1u);
  EXPECT_EQ(trace.preopen_exit_counts.count("plainfn"), 1u);

  std::vector<Finding> findings;
  CrossCheckTrace(trace, names, lint.model, &findings);
  for (const Finding& f : findings) {
    EXPECT_NE(f.rule, "trace-orphan-exit") << f.message;
  }

  // The same exit arriving after plainfn has already been seen entering is
  // not a cut artefact and must still be reported.
  RawTrace bad;
  bad.events.push_back(RawEvent{600, 10});
  bad.events.push_back(RawEvent{601, 20});
  bad.events.push_back(RawEvent{601, 30});  // orphan after balanced activity
  const DecodedTrace bad_trace = Decoder::Decode(bad, names);
  EXPECT_EQ(bad_trace.orphan_exits, 1u);
  EXPECT_EQ(bad_trace.preopen_exit_counts.count("plainfn"), 0u);
  findings.clear();
  CrossCheckTrace(bad_trace, names, lint.model, &findings);
  bool orphan = false;
  for (const Finding& f : findings) {
    orphan = orphan || f.rule == "trace-orphan-exit";
  }
  EXPECT_TRUE(orphan);
}

TEST(LintTrace, TruncatedFinalStackIsNotAnAnomaly) {
  const LintResult lint = LintText({{"reg.cc", ReadFixture("good_kernel.cc")}});
  TagFile names;
  ASSERT_TRUE(names.AddFunction("plainfn", 600));

  // A capture stopped mid-run: the in-flight stack is truncated, which is
  // how every real capture ends — the cross-check must not report it.
  RawTrace raw;
  raw.events.push_back(RawEvent{600, 10});  // entry, capture stops here
  const DecodedTrace trace = Decoder::Decode(raw, names);
  EXPECT_GE(trace.unclosed_entries, 1u);
  EXPECT_EQ(trace.truncated_entry_counts.count("plainfn"), 1u);

  std::vector<Finding> findings;
  CrossCheckTrace(trace, names, lint.model, &findings);
  for (const Finding& f : findings) {
    EXPECT_NE(f.rule, "trace-unclosed-entry") << f.message;
  }
}

}  // namespace
}  // namespace hwprof::lint
