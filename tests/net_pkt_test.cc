// Wire formats and Internet checksums: build/parse round trips and
// corruption detection, property-style.

#include <gtest/gtest.h>

#include "src/base/rng.h"
#include "src/kern/net_pkt.h"

namespace hwprof {
namespace {

Bytes RandomPayload(Rng& rng, std::size_t n) {
  Bytes out(n);
  for (auto& b : out) {
    b = static_cast<std::uint8_t>(rng.NextBelow(256));
  }
  return out;
}

// --- Checksum arithmetic --------------------------------------------------------

TEST(InetChecksum, WordSumMatchesByteSumForEveryShape) {
  // The unrolled (word-at-a-time) kernel checksum must fold to exactly the
  // byte-pair sum for every length class (word-aligned, +1, +2, +3, odd
  // tail) and any initial partial sum.
  Rng rng(77);
  for (const std::size_t len :
       {std::size_t{0}, std::size_t{1}, std::size_t{2}, std::size_t{3},
        std::size_t{4}, std::size_t{5}, std::size_t{19}, std::size_t{20},
        std::size_t{64}, std::size_t{1459}, std::size_t{1460}}) {
    const Bytes data = RandomPayload(rng, len);
    for (const std::uint32_t initial : {0u, 1u, 0xFFFFu, 0x1234u}) {
      EXPECT_EQ(InetSumWords(data, initial), InetSum(data, initial))
          << "len=" << len << " initial=" << initial;
    }
  }
  // All-ones payloads exercise maximal carry traffic.
  const Bytes ones(31, 0xFF);
  EXPECT_EQ(InetSumWords(ones), InetSum(ones));
}

TEST(InetChecksum, KnownVectors) {
  // RFC 1071 example: 00 01 f2 03 f4 f5 f6 f7 sums to ddf2 (folded).
  const Bytes data{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7};
  EXPECT_EQ(InetSum(data), 0xddf2);
  EXPECT_EQ(InetChecksum(data), static_cast<std::uint16_t>(~0xddf2 & 0xFFFF));
}

TEST(InetChecksum, EmptyAndOddLengths) {
  EXPECT_EQ(InetSum(Bytes{}), 0u);
  EXPECT_EQ(InetSum(Bytes{0x12}), 0x1200);  // odd byte padded on the right
}

TEST(InetChecksum, DataPlusChecksumVerifiesToAllOnes) {
  Rng rng(7);
  for (int round = 0; round < 50; ++round) {
    Bytes data = RandomPayload(rng, 2 + rng.NextBelow(200) * 2);  // even length
    const std::uint16_t cksum = InetChecksum(data);
    data.push_back(static_cast<std::uint8_t>(cksum >> 8));
    data.push_back(static_cast<std::uint8_t>(cksum & 0xFF));
    EXPECT_EQ(InetSum(data), 0xFFFF);
  }
}

// --- Ethernet framing -------------------------------------------------------------

TEST(EtherFrame, RoundTripAndPadding) {
  EtherHeader eh;
  eh.src = 2;
  eh.dst = 1;
  const Bytes tiny{1, 2, 3};
  const Bytes frame = BuildEtherFrame(eh, tiny);
  EXPECT_EQ(frame.size(), kEtherMinFrame);  // padded
  EtherHeader parsed;
  Bytes payload;
  ASSERT_TRUE(ParseEtherFrame(frame, &parsed, &payload));
  EXPECT_EQ(parsed.src, 2);
  EXPECT_EQ(parsed.dst, 1);
  EXPECT_EQ(parsed.type, kEtherTypeIp);
  // Padding means the payload comes back extended; prefix must match.
  ASSERT_GE(payload.size(), tiny.size());
  EXPECT_TRUE(std::equal(tiny.begin(), tiny.end(), payload.begin()));
}

TEST(EtherFrame, TooShortRejected) {
  EtherHeader eh;
  Bytes payload;
  EXPECT_FALSE(ParseEtherFrame(Bytes(5, 0), &eh, &payload));
}

// --- IP ------------------------------------------------------------------------------

TEST(IpPacket, RoundTrip) {
  Rng rng(11);
  for (int round = 0; round < 30; ++round) {
    IpHeader ih;
    ih.proto = rng.NextBool(0.5) ? kIpProtoTcp : kIpProtoUdp;
    ih.id = static_cast<std::uint16_t>(rng.NextBelow(65536));
    ih.src = static_cast<std::uint32_t>(rng.Next());
    ih.dst = static_cast<std::uint32_t>(rng.Next());
    const Bytes payload = RandomPayload(rng, rng.NextBelow(1400));
    const Bytes packet = BuildIpPacket(ih, payload);
    IpHeader parsed;
    Bytes parsed_payload;
    ASSERT_TRUE(ParseIpPacket(packet, &parsed, &parsed_payload));
    EXPECT_EQ(parsed.proto, ih.proto);
    EXPECT_EQ(parsed.id, ih.id);
    EXPECT_EQ(parsed.src, ih.src);
    EXPECT_EQ(parsed.dst, ih.dst);
    EXPECT_EQ(parsed_payload, payload);
  }
}

TEST(IpPacket, HeaderCorruptionDetected) {
  IpHeader ih;
  ih.proto = kIpProtoTcp;
  ih.src = 1;
  ih.dst = 2;
  Bytes packet = BuildIpPacket(ih, Bytes(64, 0xAB));
  // Flip each header byte in turn: the checksum must catch every one.
  for (std::size_t i = 0; i < IpHeader::kBytes; ++i) {
    Bytes corrupted = packet;
    corrupted[i] ^= 0x40;
    IpHeader parsed;
    Bytes payload;
    EXPECT_FALSE(ParseIpPacket(corrupted, &parsed, &payload)) << "byte " << i;
  }
}

TEST(IpPacket, ParsesPaddedFrames) {
  // An IP packet extracted from a padded Ethernet frame carries trailing
  // padding; total_len must bound the payload.
  IpHeader ih;
  ih.proto = kIpProtoUdp;
  ih.src = 1;
  ih.dst = 2;
  Bytes packet = BuildIpPacket(ih, Bytes{1, 2, 3});
  packet.resize(packet.size() + 17, 0);  // padding
  IpHeader parsed;
  Bytes payload;
  ASSERT_TRUE(ParseIpPacket(packet, &parsed, &payload));
  EXPECT_EQ(payload, (Bytes{1, 2, 3}));
}

// --- TCP ---------------------------------------------------------------------------------

class TcpSegmentTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TcpSegmentTest, RoundTripWithChecksum) {
  Rng rng(GetParam() + 1);
  IpHeader ih;
  ih.proto = kIpProtoTcp;
  ih.src = 0x0A000002;
  ih.dst = 0x0A000001;
  TcpHeader th;
  th.sport = 1024;
  th.dport = 4000;
  th.seq = 0x12345678;
  th.ack = 0x9ABCDEF0;
  th.flags = TcpHeader::kAck | TcpHeader::kPsh;
  th.win = 16384;
  const Bytes payload = RandomPayload(rng, GetParam());
  const Bytes segment = BuildTcpSegment(ih, th, payload);
  TcpHeader parsed;
  Bytes parsed_payload;
  bool cksum_ok = false;
  ASSERT_TRUE(ParseTcpSegment(ih, segment, &parsed, &parsed_payload, &cksum_ok));
  EXPECT_TRUE(cksum_ok);
  EXPECT_EQ(parsed.sport, th.sport);
  EXPECT_EQ(parsed.dport, th.dport);
  EXPECT_EQ(parsed.seq, th.seq);
  EXPECT_EQ(parsed.ack, th.ack);
  EXPECT_EQ(parsed.flags, th.flags);
  EXPECT_EQ(parsed.win, th.win);
  EXPECT_EQ(parsed_payload, payload);
}

INSTANTIATE_TEST_SUITE_P(PayloadSizes, TcpSegmentTest,
                         ::testing::Values(0u, 1u, 2u, 511u, 512u, 1024u, 1460u));

TEST(TcpSegment, PayloadCorruptionFailsChecksum) {
  Rng rng(3);
  IpHeader ih;
  ih.proto = kIpProtoTcp;
  ih.src = 1;
  ih.dst = 2;
  TcpHeader th;
  th.sport = 1;
  th.dport = 2;
  Bytes segment = BuildTcpSegment(ih, th, RandomPayload(rng, 100));
  for (int round = 0; round < 40; ++round) {
    Bytes corrupted = segment;
    const std::size_t at = rng.NextBelow(corrupted.size());
    corrupted[at] ^= static_cast<std::uint8_t>(1 + rng.NextBelow(255));
    TcpHeader parsed;
    Bytes payload;
    bool cksum_ok = true;
    ASSERT_TRUE(ParseTcpSegment(ih, corrupted, &parsed, &payload, &cksum_ok));
    EXPECT_FALSE(cksum_ok) << "corruption at byte " << at << " undetected";
  }
}

TEST(TcpSegment, PseudoHeaderCoversAddresses) {
  // The same segment bytes under different IP addresses must fail: the
  // checksum covers the pseudo-header.
  IpHeader ih;
  ih.proto = kIpProtoTcp;
  ih.src = 1;
  ih.dst = 2;
  TcpHeader th;
  const Bytes segment = BuildTcpSegment(ih, th, Bytes{9, 9});
  IpHeader other = ih;
  other.src = 99;
  TcpHeader parsed;
  Bytes payload;
  bool cksum_ok = true;
  ASSERT_TRUE(ParseTcpSegment(other, segment, &parsed, &payload, &cksum_ok));
  EXPECT_FALSE(cksum_ok);
}

// --- UDP --------------------------------------------------------------------------------

TEST(UdpDatagram, RoundTripWithChecksum) {
  IpHeader ih;
  ih.proto = kIpProtoUdp;
  ih.src = 3;
  ih.dst = 4;
  UdpHeader uh;
  uh.sport = 1023;
  uh.dport = 2049;
  uh.has_checksum = true;
  const Bytes payload{1, 2, 3, 4, 5};
  const Bytes dgram = BuildUdpDatagram(ih, uh, payload);
  UdpHeader parsed;
  Bytes parsed_payload;
  bool cksum_ok = false;
  ASSERT_TRUE(ParseUdpDatagram(ih, dgram, &parsed, &parsed_payload, &cksum_ok));
  EXPECT_TRUE(cksum_ok);
  EXPECT_TRUE(parsed.has_checksum);
  EXPECT_EQ(parsed_payload, payload);
}

TEST(UdpDatagram, NoChecksumModeSkipsVerification) {
  // NFS-era UDP: checksums off. Corruption is NOT detected — that is the
  // point the paper's NFS-vs-FTP comparison turns on.
  IpHeader ih;
  ih.proto = kIpProtoUdp;
  ih.src = 3;
  ih.dst = 4;
  UdpHeader uh;
  uh.sport = 1;
  uh.dport = 2;
  uh.has_checksum = false;
  Bytes dgram = BuildUdpDatagram(ih, uh, Bytes{1, 2, 3, 4});
  dgram.back() ^= 0xFF;  // corrupt payload
  UdpHeader parsed;
  Bytes payload;
  bool cksum_ok = false;
  ASSERT_TRUE(ParseUdpDatagram(ih, dgram, &parsed, &payload, &cksum_ok));
  EXPECT_TRUE(cksum_ok);  // vacuously: nothing was checked
  EXPECT_FALSE(parsed.has_checksum);
}

TEST(UdpDatagram, ChecksumCatchesCorruptionWhenEnabled) {
  IpHeader ih;
  ih.proto = kIpProtoUdp;
  ih.src = 3;
  ih.dst = 4;
  UdpHeader uh;
  uh.sport = 1;
  uh.dport = 2;
  uh.has_checksum = true;
  Bytes dgram = BuildUdpDatagram(ih, uh, Bytes{1, 2, 3, 4});
  dgram.back() ^= 0xFF;
  UdpHeader parsed;
  Bytes payload;
  bool cksum_ok = true;
  ASSERT_TRUE(ParseUdpDatagram(ih, dgram, &parsed, &payload, &cksum_ok));
  EXPECT_FALSE(cksum_ok);
}

TEST(UdpDatagram, LengthFieldBoundsPayload) {
  IpHeader ih;
  ih.proto = kIpProtoUdp;
  UdpHeader uh;
  uh.has_checksum = false;
  Bytes dgram = BuildUdpDatagram(ih, uh, Bytes{7, 7});
  dgram.resize(dgram.size() + 10, 0);  // ethernet padding survives parse
  UdpHeader parsed;
  Bytes payload;
  bool cksum_ok = false;
  ASSERT_TRUE(ParseUdpDatagram(ih, dgram, &parsed, &payload, &cksum_ok));
  EXPECT_EQ(payload, (Bytes{7, 7}));
}

}  // namespace
}  // namespace hwprof
