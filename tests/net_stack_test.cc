// The networking stack end to end: handshake, ordered delivery, windows,
// EOF, drops/retransmits, UDP checksum policy.

#include <gtest/gtest.h>

#include <memory>

#include "src/kern/net.h"
#include "src/kern/net_hosts.h"
#include "src/kern/nfs.h"
#include "src/kern/user_env.h"
#include "src/workloads/testbed.h"
#include "src/workloads/workloads.h"

namespace hwprof {
namespace {

TEST(NetStack, HandshakeEstablishesConnection) {
  Testbed tb;
  Kernel& k = tb.kernel();
  auto sender = std::make_shared<SenderHost>(tb.machine(), k.wire(), kSenderNodeId,
                                             kSenderIpAddr);
  bool accepted = false;
  k.Spawn("srv", [&](UserEnv& env) {
    const int fd = env.Socket(true);
    ASSERT_TRUE(env.Bind(fd, 4000));
    ASSERT_TRUE(env.Listen(fd));
    const int conn = env.Accept(fd);
    accepted = conn >= 0;
  });
  tb.machine().events().ScheduleAt(Msec(20), [&] {
    sender->StartStream(kPcIpAddr, 4000, 1000);
  });
  k.Run(Sec(2));
  EXPECT_TRUE(accepted);
  EXPECT_TRUE(sender->connected() || sender->done());
}

class StreamSizeTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StreamSizeTest, DeliversExactVerifiedByteStream) {
  Testbed tb;
  NetReceiveResult res = RunNetworkReceive(tb, Sec(20), GetParam());
  EXPECT_EQ(res.bytes_received, GetParam());
  EXPECT_TRUE(res.integrity_ok);
  EXPECT_NE(res.done_at, 0u) << "receiver never saw EOF";
}

INSTANTIATE_TEST_SUITE_P(Sizes, StreamSizeTest,
                         ::testing::Values(1ull, 100ull, 1460ull, 1461ull, 8192ull,
                                           65536ull, 300000ull));

TEST(NetStack, SmallMssStillDeliversInOrder) {
  Testbed tb;
  Kernel& k = tb.kernel();
  auto sender = std::make_shared<SenderHost>(tb.machine(), k.wire(), kSenderNodeId,
                                             kSenderIpAddr);
  std::uint64_t got = 0;
  bool ok = true;
  std::uint64_t cursor = 0;
  k.Spawn("srv", [&](UserEnv& env) {
    const int fd = env.Socket(true);
    env.Bind(fd, 4000);
    env.Listen(fd);
    const int conn = env.Accept(fd);
    while (true) {
      Bytes chunk;
      if (env.Recv(conn, 4096, &chunk) <= 0) {
        break;
      }
      for (std::uint8_t b : chunk) {
        ok &= b == SenderHost::PayloadByte(cursor++);
      }
      got += chunk.size();
    }
  });
  tb.machine().events().ScheduleAt(Msec(20), [&] {
    sender->StartStream(kPcIpAddr, 4000, 20000, /*mss=*/536);
  });
  k.Run(Sec(20));
  EXPECT_EQ(got, 20000u);
  EXPECT_TRUE(ok);
}

TEST(NetStack, ReceiverWindowThrottlesInFlightData) {
  // If the receiving process never reads, the sender must stall at the
  // advertised window rather than blast the whole stream.
  Testbed tb;
  Kernel& k = tb.kernel();
  auto sender = std::make_shared<SenderHost>(tb.machine(), k.wire(), kSenderNodeId,
                                             kSenderIpAddr);
  k.Spawn("lazy", [&](UserEnv& env) {
    const int fd = env.Socket(true);
    env.Bind(fd, 4000);
    env.Listen(fd);
    env.Accept(fd);
    // Accept, then never read.
    env.Compute(Sec(5));
  });
  tb.machine().events().ScheduleAt(Msec(20), [&] {
    sender->StartStream(kPcIpAddr, 4000, 1 * kMiB);
  });
  k.Run(Sec(3));
  // The socket buffer is 16 KiB: no more than that (plus slop) can be acked.
  EXPECT_LE(sender->bytes_acked(), 32u * 1024);
  EXPECT_GT(sender->bytes_acked(), 0u);
}

TEST(NetStack, RetransmitRecoversFromRingOverflow) {
  // Stall interrupt processing long enough for the 8 KiB board ring to
  // overflow, dropping frames; the sender's go-back-N timer must recover
  // and the stream must still arrive intact.
  Testbed tb;
  Kernel& k = tb.kernel();
  auto sender = std::make_shared<SenderHost>(tb.machine(), k.wire(), kSenderNodeId,
                                             kSenderIpAddr);
  std::uint64_t got = 0;
  bool ok = true;
  std::uint64_t cursor = 0;
  k.Spawn("srv", [&](UserEnv& env) {
    const int fd = env.Socket(true);
    env.Bind(fd, 4000);
    env.Listen(fd);
    const int conn = env.Accept(fd);
    // Block out the ether card for a long stretch right after accepting.
    const int s = k.spl().splhigh();
    k.cpu().Use(Msec(50));
    k.spl().splx(s);
    while (true) {
      Bytes chunk;
      if (env.Recv(conn, 8192, &chunk) <= 0) {
        break;
      }
      for (std::uint8_t b : chunk) {
        ok &= b == SenderHost::PayloadByte(cursor++);
      }
      got += chunk.size();
    }
  });
  tb.machine().events().ScheduleAt(Msec(20), [&] {
    sender->StartStream(kPcIpAddr, 4000, 100 * 1024);
  });
  k.Run(Sec(30));
  EXPECT_EQ(got, 100u * 1024);
  EXPECT_TRUE(ok);
  EXPECT_GT(k.net().we().rx_dropped() + sender->retransmits(), 0u)
      << "the stall should have forced drops or retransmits";
}

TEST(NetStack, ChecksumFailuresAreDropped) {
  // Corrupt frames injected straight onto the wire must be discarded by
  // in_cksum verification, not delivered.
  Testbed tb;
  Kernel& k = tb.kernel();
  std::uint64_t got = 0;
  k.Spawn("srv", [&](UserEnv& env) {
    const int fd = env.Socket(false);  // udp
    env.Bind(fd, 5000);
    Bytes data;
    env.Recv(fd, 4096, &data);
    got = data.size();
  });
  tb.machine().events().ScheduleAt(Msec(20), [&] {
    // A hand-built UDP datagram with a deliberately bad checksum.
    IpHeader ih;
    ih.proto = kIpProtoUdp;
    ih.src = kSenderIpAddr;
    ih.dst = kPcIpAddr;
    UdpHeader uh;
    uh.sport = 9;
    uh.dport = 5000;
    uh.has_checksum = true;
    Bytes dgram = BuildUdpDatagram(ih, uh, Bytes{1, 2, 3});
    dgram[9] ^= 0xFF;  // corrupt payload after checksumming
    EtherHeader eh;
    eh.src = kSenderNodeId;
    eh.dst = kPcNodeId;
    k.wire().Transmit(kSenderNodeId, BuildEtherFrame(eh, BuildIpPacket(ih, dgram)));
  });
  k.Run(Msec(500));
  EXPECT_EQ(got, 0u);
  EXPECT_GE(k.net().cksum_failures(), 1u);
}

TEST(NetStack, UdpDeliversDatagram) {
  Testbed tb;
  Kernel& k = tb.kernel();
  Bytes got;
  k.Spawn("srv", [&](UserEnv& env) {
    const int fd = env.Socket(false);
    env.Bind(fd, 5000);
    env.Recv(fd, 4096, &got);
  });
  tb.machine().events().ScheduleAt(Msec(20), [&] {
    IpHeader ih;
    ih.proto = kIpProtoUdp;
    ih.src = kSenderIpAddr;
    ih.dst = kPcIpAddr;
    UdpHeader uh;
    uh.sport = 9;
    uh.dport = 5000;
    uh.has_checksum = false;  // era default
    const Bytes dgram = BuildUdpDatagram(ih, uh, Bytes{4, 5, 6, 7});
    EtherHeader eh;
    eh.src = kSenderNodeId;
    eh.dst = kPcNodeId;
    k.wire().Transmit(kSenderNodeId, BuildEtherFrame(eh, BuildIpPacket(ih, dgram)));
  });
  k.Run(Msec(500));
  EXPECT_EQ(got, (Bytes{4, 5, 6, 7}));
}

TEST(NetStack, BindRejectsPortCollision) {
  Testbed tb;
  Kernel& k = tb.kernel();
  bool first = false;
  bool second = true;
  k.Spawn("p", [&](UserEnv& env) {
    const int a = env.Socket(true);
    const int b = env.Socket(true);
    first = env.Bind(a, 4000);
    second = env.Bind(b, 4000);
  });
  k.Run(Msec(200));
  EXPECT_TRUE(first);
  EXPECT_FALSE(second);
}

TEST(NetStack, ShortChainChecksumSumsAndChargesOnlyExistingBytes) {
  // A chain holding fewer bytes than the requested length must sum exactly
  // the bytes present, be billed for those bytes (not the phantom ones),
  // and count the event.
  Testbed tb;
  Kernel& k = tb.kernel();
  const Bytes payload = PatternBytes(100);

  Mbuf* shorted = k.mbufs().FromBytes(payload, false);
  const Nanoseconds before_short = k.cpu().busy_ns();
  const std::uint16_t short_sum = k.net().InCksumChain(shorted, 400);
  const Nanoseconds short_cost = k.cpu().busy_ns() - before_short;
  EXPECT_EQ(short_sum, InetSum(payload));
  EXPECT_EQ(k.net().cksum_short_chains(), 1u);
  k.mbufs().MFreem(shorted);

  // The same chain summed at its exact length costs exactly the same and
  // is not "short".
  Mbuf* exact = k.mbufs().FromBytes(payload, false);
  const Nanoseconds before_exact = k.cpu().busy_ns();
  EXPECT_EQ(k.net().InCksumChain(exact, 100), short_sum);
  EXPECT_EQ(k.cpu().busy_ns() - before_exact, short_cost);
  EXPECT_EQ(k.net().cksum_short_chains(), 1u);
  k.mbufs().MFreem(exact);

  // A request longer than the chain must not cost more than the honest one;
  // summing a genuinely longer chain does.
  Mbuf* longer = k.mbufs().FromBytes(PatternBytes(400), false);
  const Nanoseconds before_long = k.cpu().busy_ns();
  k.net().InCksumChain(longer, 400);
  EXPECT_GT(k.cpu().busy_ns() - before_long, short_cost);
  k.mbufs().MFreem(longer);
}

TEST(NetStack, FullIpintrqCountsDropsAndFreesTheChain) {
  // ipintrq caps at 50 packets; every packet past that must land on the
  // drop counter and go back to the mbuf pool, not leak.
  Testbed tb;
  Kernel& k = tb.kernel();
  // Flood at raised IPL, as the driver does: otherwise every cost charge
  // lets the pending soft interrupt drain the queue behind our back.
  const int s = k.spl().splimp();
  for (int i = 0; i < 50; ++i) {
    k.net().EtherInput(k.mbufs().FromBytes(PatternBytes(64), false));
  }
  EXPECT_EQ(k.net().ipintrq_drops(), 0u);
  const std::uint64_t live_at_capacity = k.mbufs().live();

  for (int i = 0; i < 7; ++i) {
    k.net().EtherInput(k.mbufs().FromBytes(PatternBytes(64), false));
  }
  EXPECT_EQ(k.net().ipintrq_drops(), 7u);
  EXPECT_EQ(k.mbufs().live(), live_at_capacity) << "dropped chains leaked";
  k.spl().splx(s);
}

TEST(NetStack, UnrolledChecksumKnobSameSumLowerCharge) {
  // KernConfig cksum_unrolled swaps in the word-at-a-time loop: identical
  // folded sum, cheaper per-byte model charge.
  TestbedConfig fast_config;
  fast_config.kernel.knobs.cksum_unrolled = true;
  Testbed fast(fast_config);
  Testbed slow;
  const Bytes payload = PatternBytes(1460);

  auto charge = [&payload](Testbed& tb, std::uint16_t* sum) {
    Kernel& k = tb.kernel();
    Mbuf* chain = k.mbufs().FromBytes(payload, false);
    const Nanoseconds before = k.cpu().busy_ns();
    *sum = k.net().InCksumChain(chain, payload.size());
    const Nanoseconds cost = k.cpu().busy_ns() - before;
    k.mbufs().MFreem(chain);
    return cost;
  };
  std::uint16_t fast_sum = 0;
  std::uint16_t slow_sum = 0;
  const Nanoseconds fast_cost = charge(fast, &fast_sum);
  const Nanoseconds slow_cost = charge(slow, &slow_sum);
  EXPECT_EQ(fast_sum, slow_sum);
  EXPECT_EQ(fast_sum, InetSum(payload));
  EXPECT_LT(fast_cost, slow_cost);
  // The per-byte gap is exactly the cost-model delta.
  const Kernel& k = slow.kernel();
  EXPECT_EQ(slow_cost - fast_cost,
            payload.size() * (k.cost().cksum_c_ns_per_byte -
                              k.cost().cksum_unrolled_ns_per_byte));
}

TEST(NetStack, DriverCopyCostDominatesReceive) {
  // Per received full-size frame, weget's bcopy from controller memory
  // should cost about 1 ms (1045 µs in the paper).
  Testbed tb;
  NetReceiveResult res = RunNetworkReceive(tb, Sec(5), 64 * 1024, false);
  ASSERT_GT(res.bytes_received, 0u);
  // ~45 full frames: total driver copy time ≈ 45 ms; CPU time per byte of
  // stream ≥ 697 ns.
  EXPECT_GT(tb.kernel().cpu().busy_ns(),
            res.bytes_received * tb.kernel().cost().isa8_ns_per_byte);
}

}  // namespace
}  // namespace hwprof
