// NFS-lite: RPC round trips, retransmission, checksum policy, and the
// NFS-vs-FTP comparison the paper's filesystem study makes.

#include <gtest/gtest.h>

#include <memory>

#include "src/kern/nfs.h"
#include "src/kern/user_env.h"
#include "src/workloads/testbed.h"
#include "src/workloads/workloads.h"

namespace hwprof {
namespace {

TEST(Nfs, ReadRoundTrip) {
  Testbed tb;
  Kernel& k = tb.kernel();
  auto server = std::make_shared<NfsServerHost>(tb.machine(), k.wire());
  const Bytes contents = PatternBytes(10 * 1024, 9);
  const std::uint32_t fh = server->Export("f", contents);
  Bytes got;
  long n = -1;
  k.Spawn("client", [&](UserEnv& env) {
    k.nfs().Init();
    n = env.NfsRead(fh, 0, 10 * 1024, &got);
  });
  k.Run(Sec(10));
  EXPECT_EQ(n, 10 * 1024);
  EXPECT_EQ(got, contents);
  EXPECT_GT(server->rpcs_served(), 0u);
}

TEST(Nfs, ReadAtOffsetAndPastEof) {
  Testbed tb;
  Kernel& k = tb.kernel();
  auto server = std::make_shared<NfsServerHost>(tb.machine(), k.wire());
  const Bytes contents = PatternBytes(2000, 4);
  const std::uint32_t fh = server->Export("f", contents);
  Bytes mid;
  Bytes past;
  long n_mid = -1;
  long n_past = -1;
  k.Spawn("client", [&](UserEnv& env) {
    k.nfs().Init();
    n_mid = env.NfsRead(fh, 500, 1000, &mid);
    n_past = env.NfsRead(fh, 5000, 100, &past);
  });
  k.Run(Sec(10));
  EXPECT_EQ(n_mid, 1000);
  EXPECT_EQ(mid, Bytes(contents.begin() + 500, contents.begin() + 1500));
  EXPECT_EQ(n_past, 0);
}

TEST(Nfs, WriteRoundTrip) {
  Testbed tb;
  Kernel& k = tb.kernel();
  auto server = std::make_shared<NfsServerHost>(tb.machine(), k.wire());
  const std::uint32_t fh = server->Export("f", Bytes{});
  const Bytes data = PatternBytes(3000, 2);
  long wrote = -1;
  k.Spawn("client", [&](UserEnv& env) {
    k.nfs().Init();
    wrote = env.NfsWrite(fh, 0, data);
  });
  k.Run(Sec(10));
  EXPECT_EQ(wrote, 3000);
  EXPECT_EQ(server->Contents(fh), data);
}

TEST(Nfs, UnknownHandleFails) {
  Testbed tb;
  Kernel& k = tb.kernel();
  auto server = std::make_shared<NfsServerHost>(tb.machine(), k.wire());
  server->Export("f", Bytes(10, 1));
  long n = 0;
  k.Spawn("client", [&](UserEnv& env) {
    k.nfs().Init();
    Bytes out;
    n = env.NfsRead(999, 0, 10, &out);
  });
  k.Run(Sec(10));
  EXPECT_EQ(n, -1);
}

TEST(Nfs, RetransmitsWhenServerIsSlow) {
  // Server service time beyond the client's 1 s timer: the stop-and-wait
  // client resends, and the eventual reply still completes the read.
  Testbed tb;
  Kernel& k = tb.kernel();
  auto server = std::make_shared<NfsServerHost>(tb.machine(), k.wire());
  server->SetServiceDelay(1500 * kMillisecond);
  const std::uint32_t fh = server->Export("f", PatternBytes(100));
  Bytes got;
  long n = -1;
  k.Spawn("client", [&](UserEnv& env) {
    k.nfs().Init();
    n = env.NfsRead(fh, 0, 100, &got);
  });
  k.Run(Sec(10));
  EXPECT_EQ(n, 100);
  EXPECT_EQ(got, PatternBytes(100));
  EXPECT_GE(k.nfs().timeouts(), 1u);
}

TEST(Nfs, BeatsFtpStyleTcpTransfer) {
  // The paper's observation: with UDP checksums off and in_cksum unfixed,
  // NFS reads outrun an FTP-style TCP stream of the same size.
  Testbed tb_nfs;
  Testbed tb_tcp;
  TransferCompareResult res = RunNfsVsFtp(tb_nfs, tb_tcp, 256 * 1024);
  EXPECT_EQ(res.nfs_bytes, 256u * 1024);
  EXPECT_EQ(res.tcp_bytes, 256u * 1024);
  EXPECT_TRUE(res.nfs_data_ok);
  EXPECT_GT(res.nfs_kb_s, res.tcp_kb_s)
      << "NFS " << res.nfs_kb_s << " KB/s vs TCP " << res.tcp_kb_s << " KB/s";
}

TEST(Nfs, UdpChecksumsSlowTheClientDown) {
  // Enabling UDP checksums adds in_cksum work on every reply.
  auto run_with = [](bool checksums) {
    TestbedConfig config;
    config.kernel.udp_checksums = checksums;
    Testbed tb(config);
    Kernel& k = tb.kernel();
    auto server = std::make_shared<NfsServerHost>(tb.machine(), k.wire());
    server->SetUseChecksums(checksums);
    const std::uint32_t fh = server->Export("f", PatternBytes(128 * 1024));
    auto done = std::make_shared<Nanoseconds>(0);
    k.Spawn("client", [fh, done, &k](UserEnv& env) {
      k.nfs().Init();
      Bytes out;
      env.NfsRead(fh, 0, 128 * 1024, &out);
      *done = k.Now();
    });
    k.Run(Sec(60));
    return *done;
  };
  const Nanoseconds with = run_with(true);
  const Nanoseconds without = run_with(false);
  ASSERT_NE(with, 0u);
  ASSERT_NE(without, 0u);
  EXPECT_LT(without, with);
}

}  // namespace
}  // namespace hwprof
