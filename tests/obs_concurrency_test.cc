// Telemetry under real concurrency, built to run under TSan (CI's
// tests-tsan job includes this binary): the SetEnabled kill-switch flipped
// while worker threads are mid-span, per-thread sink merges that must be
// deterministic regardless of scheduling, gauge peak tracking under
// contention, and the TimeSeriesStore ring mutated and windowed from
// different threads. The registry is process-global, so every test resets
// it and namespaces its metric names.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "src/obs/telemetry.h"
#include "src/obs/timeseries.h"

namespace hwprof::obs {
namespace {

class ObsConcurrencyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetEnabled(true);
    ResetTelemetry();
  }
  void TearDown() override { SetEnabled(true); }
};

TEST_F(ObsConcurrencyTest, KillSwitchFlippedMidSpanIsSafe) {
  // Workers hammer every metric kind while the main thread toggles the
  // kill-switch. The contract under race is "no tearing, no crash, updates
  // while disabled are lost" — so the only value assertion is an upper
  // bound; TSan asserts the rest.
  constexpr int kThreads = 4;
  constexpr int kIters = 20000;
  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([] {
      for (int i = 0; i < kIters; ++i) {
        OBS_COUNT("conc.kill.counter", 1);
        OBS_GAUGE_ADD("conc.kill.gauge", 1);
        {
          OBS_SCOPED_SPAN("conc.kill.span");
          OBS_HIST_NS("conc.kill.hist", 123);
        }
        OBS_GAUGE_ADD("conc.kill.gauge", -1);
      }
    });
  }
  std::thread toggler([&stop] {
    bool on = false;
    while (!stop.load(std::memory_order_relaxed)) {
      SetEnabled(on);
      on = !on;
      std::this_thread::yield();
    }
    SetEnabled(true);
  });
  for (std::thread& w : workers) {
    w.join();
  }
  stop.store(true, std::memory_order_relaxed);
  toggler.join();

  const Snapshot snap = GlobalSnapshot();
  EXPECT_LE(snap.CounterValue("conc.kill.counter"),
            static_cast<std::uint64_t>(kThreads) * kIters);
  const MetricValue* hist = snap.Find("conc.kill.hist");
  if (hist != nullptr) {
    EXPECT_LE(hist->count, static_cast<std::uint64_t>(kThreads) * kIters);
  }
}

TEST_F(ObsConcurrencyTest, SinkMergeIsDeterministicAcrossSchedules) {
  // Each thread contributes a known amount; whatever the interleaving, the
  // merged snapshot is exact and two snapshots of the same quiescent state
  // render byte-identically.
  constexpr int kThreads = 8;
  constexpr int kIters = 5000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([t] {
      for (int i = 0; i < kIters; ++i) {
        OBS_COUNT("conc.merge.counter", static_cast<std::uint64_t>(t + 1));
        OBS_HIST_NS("conc.merge.hist",
                    static_cast<std::uint64_t>(500 + 1000 * t));
      }
    });
  }
  for (std::thread& w : workers) {
    w.join();
  }
  // Sum over threads of (t+1) * kIters = kIters * kThreads(kThreads+1)/2.
  const std::uint64_t expected =
      static_cast<std::uint64_t>(kIters) * kThreads * (kThreads + 1) / 2;
  const Snapshot snap = GlobalSnapshot();
  EXPECT_EQ(snap.CounterValue("conc.merge.counter"), expected);
  const MetricValue* hist = snap.Find("conc.merge.hist");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count, static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_EQ(hist->min_ns, 500u);
  EXPECT_EQ(hist->max_ns, 500u + 1000u * (kThreads - 1));
  EXPECT_EQ(snap.FormatJson(), GlobalSnapshot().FormatJson());
  EXPECT_EQ(snap.FormatText(2), GlobalSnapshot().FormatText(2));
}

TEST_F(ObsConcurrencyTest, GaugePeakUnderContentionIsBounded) {
  constexpr int kThreads = 8;
  constexpr int kIters = 2000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([] {
      for (int i = 0; i < kIters; ++i) {
        OBS_GAUGE_ADD("conc.gauge.level", 1);
        OBS_GAUGE_ADD("conc.gauge.level", -1);
      }
    });
  }
  for (std::thread& w : workers) {
    w.join();
  }
  const MetricValue* g = GlobalSnapshot().Find("conc.gauge.level");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->value, 0);  // every +1 was matched by a -1
  EXPECT_GE(g->peak, 1);
  EXPECT_LE(g->peak, kThreads);  // never more than one outstanding per thread
}

TEST_F(ObsConcurrencyTest, TimeSeriesRingEvictsOldestAtCapacity) {
  TimeSeriesStore store(4);
  for (std::uint64_t i = 1; i <= 10; ++i) {
    Snapshot snap;
    MetricValue m;
    m.name = "ring.counter";
    m.kind = MetricKind::kCounter;
    m.count = i * 100;
    snap.metrics.push_back(m);
    store.Record(i * 1000, std::move(snap));
  }
  EXPECT_EQ(store.size(), 4u);
  EXPECT_EQ(store.capacity(), 4u);
  EXPECT_EQ(store.oldest_t_ns(), 7000u);  // samples 7..10 survive
  EXPECT_EQ(store.newest_t_ns(), 10000u);
  const WindowStats w = store.Window(0);
  EXPECT_EQ(w.samples, 4u);
  ASSERT_EQ(w.metrics.size(), 1u);
  EXPECT_EQ(w.metrics[0].first, 700u);
  EXPECT_EQ(w.metrics[0].last, 1000u);

  // A regressing clock is clamped, never reordering the ring.
  Snapshot snap;
  store.Record(5, std::move(snap));
  EXPECT_EQ(store.newest_t_ns(), 10000u);
}

TEST_F(ObsConcurrencyTest, TimeSeriesRecordAndWindowRaceSafely) {
  TimeSeriesStore store(16);
  std::atomic<bool> stop{false};
  std::thread writer([&store, &stop] {
    std::uint64_t t = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      Snapshot snap;
      MetricValue m;
      m.name = "race.counter";
      m.kind = MetricKind::kCounter;
      m.count = ++t;
      snap.metrics.push_back(m);
      store.Record(t * 100, std::move(snap));
    }
  });
  for (int i = 0; i < 2000; ++i) {
    const WindowStats w = store.Window(0);
    EXPECT_LE(w.samples, 16u);
    for (const WindowMetric& m : w.metrics) {
      EXPECT_LE(m.first, m.last);  // counters in one ring are monotone
    }
  }
  stop.store(true, std::memory_order_relaxed);
  writer.join();
  EXPECT_LE(store.size(), 16u);
}

}  // namespace
}  // namespace hwprof::obs
