// src/obs telemetry: counter/gauge/histogram semantics, scoped and manual
// spans, per-thread sink merging, snapshot determinism, the runtime
// kill-switch, and reset. The registry is process-global, so every test
// resets it and uses metric names namespaced by the test.

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "src/obs/telemetry.h"

namespace hwprof::obs {
namespace {

class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetEnabled(true);
    ResetTelemetry();
  }
};

TEST_F(ObsTest, CompiledIn) {
  // The tier-1 suite always builds with telemetry on; the compile-out build
  // is exercised by CI and bench_telemetry_overhead.
  EXPECT_TRUE(kTelemetryCompiledIn);
  EXPECT_TRUE(Enabled());
}

TEST_F(ObsTest, CounterAccumulates) {
  OBS_COUNT("test.counter_a", 1);
  OBS_COUNT("test.counter_a", 2);
  for (int i = 0; i < 5; ++i) {
    OBS_COUNT("test.counter_a", 1);
  }
  const Snapshot snap = GlobalSnapshot();
  EXPECT_EQ(snap.CounterValue("test.counter_a"), 8u);
  const MetricValue* m = snap.Find("test.counter_a");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->kind, MetricKind::kCounter);
  EXPECT_EQ(std::string(MetricKindName(m->kind)), "counter");
}

TEST_F(ObsTest, GaugeTracksLevelAndPeak) {
  OBS_GAUGE_ADD("test.gauge", 3);
  OBS_GAUGE_ADD("test.gauge", 4);   // level 7, peak 7
  OBS_GAUGE_ADD("test.gauge", -5);  // level 2
  OBS_GAUGE_ADD("test.gauge", 1);   // level 3, peak stays 7
  const Snapshot snap = GlobalSnapshot();
  const MetricValue* m = snap.Find("test.gauge");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->kind, MetricKind::kGauge);
  EXPECT_EQ(m->value, 3);
  EXPECT_EQ(m->peak, 7);
}

TEST_F(ObsTest, HistogramStatsAndBuckets) {
  OBS_HIST_NS("test.hist", 500);        // below the 1us first bound
  OBS_HIST_NS("test.hist", 1'500);      // 1.5us
  OBS_HIST_NS("test.hist", 2'000'000);  // 2ms
  const Snapshot snap = GlobalSnapshot();
  const MetricValue* m = snap.Find("test.hist");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->kind, MetricKind::kHistogram);
  EXPECT_EQ(m->count, 3u);
  EXPECT_EQ(m->sum_ns, 2'001'500u + 500u);
  EXPECT_EQ(m->min_ns, 500u);
  EXPECT_EQ(m->max_ns, 2'000'000u);
  std::uint64_t bucketed = 0;
  for (std::uint64_t b : m->buckets) {
    bucketed += b;
  }
  EXPECT_EQ(bucketed, 3u);
  // The ladder is strictly increasing, so bucketing is unambiguous.
  const auto& bounds = HistogramBoundsNs();
  for (std::size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_LT(bounds[i - 1], bounds[i]);
  }
  EXPECT_EQ(bounds.front(), 1'000u);          // 1us
  EXPECT_EQ(bounds.back(), 1'000'000'000u);   // 1s
}

TEST_F(ObsTest, ScopedSpanRecordsOnExit) {
  {
    OBS_SCOPED_SPAN("test.span_scoped");
  }
  {
    OBS_SCOPED_SPAN("test.span_scoped");
  }
  const Snapshot snap = GlobalSnapshot();
  const MetricValue* m = snap.Find("test.span_scoped");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->count, 2u);
}

TEST_F(ObsTest, ManualSpanRecordsWhenEnded) {
  OBS_SPAN_BEGIN(t);
  OBS_SPAN_END(t, "test.span_manual");
  const Snapshot snap = GlobalSnapshot();
  const MetricValue* m = snap.Find("test.span_manual");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->count, 1u);
}

TEST_F(ObsTest, ThreadsSumIntoOneSnapshot) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10'000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([] {
      for (int i = 0; i < kPerThread; ++i) {
        OBS_COUNT("test.mt_counter", 1);
        OBS_HIST_NS("test.mt_hist", 1'000);
      }
    });
  }
  for (std::thread& w : workers) {
    w.join();
  }
  const Snapshot snap = GlobalSnapshot();
  EXPECT_EQ(snap.CounterValue("test.mt_counter"),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  const MetricValue* h = snap.Find("test.mt_hist");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(h->min_ns, 1'000u);
  EXPECT_EQ(h->max_ns, 1'000u);
}

TEST_F(ObsTest, SnapshotIsSortedAndFormatIsDeterministic) {
  OBS_COUNT("test.z_last", 1);
  OBS_COUNT("test.a_first", 1);
  OBS_GAUGE_ADD("test.m_mid", 2);
  const Snapshot snap = GlobalSnapshot();
  for (std::size_t i = 1; i < snap.metrics.size(); ++i) {
    EXPECT_LT(snap.metrics[i - 1].name, snap.metrics[i].name);
  }
  EXPECT_EQ(snap.FormatText(2), GlobalSnapshot().FormatText(2));
  EXPECT_EQ(snap.FormatJson(), GlobalSnapshot().FormatJson());
  EXPECT_NE(snap.FormatText(0).find("test.a_first"), std::string::npos);
  EXPECT_NE(snap.FormatJson().find("\"test.m_mid\""), std::string::npos);
}

TEST_F(ObsTest, MergeIsCommutative) {
  OBS_COUNT("test.merge_c", 3);
  OBS_GAUGE_ADD("test.merge_g", 5);
  OBS_HIST_NS("test.merge_h", 10'000);
  const Snapshot a = GlobalSnapshot();
  ResetTelemetry();
  OBS_COUNT("test.merge_c", 4);
  OBS_GAUGE_ADD("test.merge_g", -2);
  OBS_HIST_NS("test.merge_h", 20'000);
  const Snapshot b = GlobalSnapshot();

  Snapshot ab = a;
  ab.Merge(b);
  Snapshot ba = b;
  ba.Merge(a);
  EXPECT_EQ(ab.FormatText(0), ba.FormatText(0));
  EXPECT_EQ(ab.CounterValue("test.merge_c"), 7u);
  const MetricValue* g = ab.Find("test.merge_g");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->value, 3);
  EXPECT_EQ(g->peak, 5);
  const MetricValue* h = ab.Find("test.merge_h");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 2u);
  EXPECT_EQ(h->sum_ns, 30'000u);
  EXPECT_EQ(h->min_ns, 10'000u);
  EXPECT_EQ(h->max_ns, 20'000u);
}

TEST_F(ObsTest, KillSwitchSuppressesUpdates) {
  OBS_COUNT("test.kill", 1);
  SetEnabled(false);
  OBS_COUNT("test.kill", 100);
  OBS_HIST_NS("test.kill_h", 1'000);
  EXPECT_EQ(SpanClock(), 0u);  // disabled spans skip the clock read
  {
    OBS_SCOPED_SPAN("test.kill_span");
  }
  SetEnabled(true);
  const Snapshot snap = GlobalSnapshot();
  EXPECT_EQ(snap.CounterValue("test.kill"), 1u);
  const MetricValue* h = snap.Find("test.kill_h");
  if (h != nullptr) {
    EXPECT_EQ(h->count, 0u);
  }
  const MetricValue* s = snap.Find("test.kill_span");
  if (s != nullptr) {
    EXPECT_EQ(s->count, 0u);
  }
  EXPECT_NE(SpanClock(), 0u);
}

TEST_F(ObsTest, ResetZeroesButKeepsRegistrations) {
  OBS_COUNT("test.reset", 9);
  ResetTelemetry();
  const Snapshot snap = GlobalSnapshot();
  const MetricValue* m = snap.Find("test.reset");
  ASSERT_NE(m, nullptr) << "registration must survive a reset";
  EXPECT_EQ(m->count, 0u);
}

TEST_F(ObsTest, MonotonicClockAdvances) {
  const std::uint64_t a = MonotonicNowNs();
  const std::uint64_t b = MonotonicNowNs();
  EXPECT_GE(b, a);
}

}  // namespace
}  // namespace hwprof::obs
