// Differential-equivalence harness for the parallel sharded analysis
// engine: for ANY capture — hand-built context-switch traces, fuzzed
// adversarial traces with anomaly injection, chunked streaming feeds with
// capture gaps, and a real workload capture — DecodeParallel must be
// byte-identical to the serial Decoder across every worker count and shard
// size. "Byte-identical" means every rendered report (summary, callgraph,
// process report, code-path trace) and every anomaly/truncation counter,
// not just the headline numbers.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "src/analysis/decoder.h"
#include "src/analysis/parallel.h"
#include "src/base/rng.h"
#include "src/base/thread_pool.h"
#include "src/instr/tag_file.h"
#include "src/profhw/raw_trace.h"
#include "src/workloads/testbed.h"
#include "src/workloads/workloads.h"
#include "tests/trace_testutil.h"

namespace hwprof {
namespace {

// Context-switch-heavy reference traces: suspended stacks, lookahead
// resolution, orphans, unknown tags, truncation — the cases where shard
// stitching has to reproduce cross-cut state exactly.
std::vector<RawTrace> ReferenceTraces() {
  std::vector<RawTrace> traces;
  traces.push_back(Trace({{100, 10}, {101, 60}}));
  traces.push_back(Trace({{100, 0}, {300, 40}, {101, 100}}));
  traces.push_back(Trace({{100, 0}, {200, 20}, {201, 100}, {102, 110}, {103, 150},
                          {200, 160}, {201, 220}, {101, 230}}));
  traces.push_back(Trace({{100, 0}, {200, 10}, {102, 30}, {103, 60}, {201, 100},
                          {101, 120}}));
  traces.push_back(Trace({{100, 0}, {102, 10}, {200, 20}, {201, 30}, {104, 40},
                          {105, 1030}, {200, 1040}, {201, 1100}, {103, 1110},
                          {101, 1120}}));
  traces.push_back(Trace({{103, 10}}));                       // orphan exit
  traces.push_back(Trace({{100, 0}, {999, 10}, {101, 20}}));  // unknown tag
  RawTrace truncated = Trace({{100, 0}, {102, 10}});
  truncated.overflowed = true;
  traces.push_back(truncated);
  // Two processes ping-ponging: many activity blocks to shard.
  {
    RawTrace t;
    std::uint32_t now = 0;
    for (int i = 0; i < 12; ++i) {
      t.events.push_back({100, now});
      t.events.push_back({200, now += 5});
      t.events.push_back({201, now += 50});
      t.events.push_back({101, now += 7});
      now += 3;
    }
    traces.push_back(t);
  }
  return traces;
}

TEST(ParallelAnalysis, ReferenceTracesMatchSerialExactly) {
  const TagFile& names = MakeNames();
  int i = 0;
  for (const RawTrace& raw : ReferenceTraces()) {
    ExpectParallelMatchesSerial(raw, names, "reference trace " + std::to_string(i++));
  }
}

class ParallelFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParallelFuzzTest, FuzzedTraceMatchesSerialAcrossJobsAndShardSizes) {
  const TagFile& names = MakeNames();
  const RawTrace raw = FuzzTrace(GetParam(), 800);
  ExpectParallelMatchesSerial(raw, names, "seed " + std::to_string(GetParam()));
}

TEST_P(ParallelFuzzTest, ChunkedFeedWithDropsMatchesStreamingDecoder) {
  const TagFile& names = MakeNames();
  Rng rng(GetParam() * 6151 + 3);
  const RawTrace raw = FuzzTrace(GetParam() + 500, 500);

  // Random chunking with occasional capture gaps, fed identically to the
  // serial streaming decoder (retaining structure) and the parallel
  // analyzer.
  std::vector<TraceChunk> chunks;
  std::size_t at = 0;
  while (at < raw.events.size()) {
    TraceChunk chunk;
    chunk.dropped_before = rng.NextBool(0.15) ? 1 + rng.NextBelow(9) : 0;
    const std::size_t n =
        std::min(raw.events.size() - at, std::size_t{1} + rng.NextBelow(120));
    chunk.events.assign(raw.events.begin() + at, raw.events.begin() + at + n);
    at += n;
    chunks.push_back(std::move(chunk));
  }

  StreamingOptions sopts;
  sopts.retain_structure = true;
  StreamingDecoder serial(names, raw.timer_bits, raw.timer_clock_hz, sopts);
  ParallelOptions popts;
  popts.jobs = 3;
  popts.shard_target_ops = 32;
  ParallelAnalyzer par(names, raw.timer_bits, raw.timer_clock_hz, popts);
  for (const TraceChunk& chunk : chunks) {
    serial.FeedChunk(chunk);
    par.FeedChunk(chunk);
  }
  EXPECT_EQ(par.events_seen(), serial.events_seen());
  EXPECT_EQ(par.dropped_events(), serial.dropped_events());
  EXPECT_EQ(Fingerprint(par.Finish(raw.overflowed)),
            Fingerprint(serial.Finish(raw.overflowed)))
      << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelFuzzTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u, 9u, 10u,
                                           11u, 12u, 13u, 21u, 34u, 42u, 55u, 89u,
                                           144u, 233u, 1993u, 4096u));

TEST(ParallelAnalysis, WorkloadCaptureMatchesSerial) {
  Testbed tb;
  tb.Arm();
  RunNetworkReceive(tb, Msec(200), 32 * 1024, false);
  const RawTrace raw = tb.StopAndUpload();
  ASSERT_GT(raw.events.size(), 100u);
  const std::string serial = Fingerprint(Decoder::Decode(raw, tb.tags()));
  for (unsigned jobs : {1u, 8u}) {
    ParallelOptions opts;
    opts.jobs = jobs;
    opts.shard_target_ops = 256;
    EXPECT_EQ(Fingerprint(DecodeParallel(raw, tb.tags(), opts)), serial)
        << "jobs=" << jobs;
  }
}

TEST(ParallelAnalysis, ManyShardsAreActuallyPlanned) {
  // Sanity that the equivalence above is not vacuous: small shard targets on
  // a switch-heavy trace must produce several shards.
  const TagFile& names = MakeNames();
  const RawTrace raw = FuzzTrace(7, 800);
  ParallelOptions opts;
  opts.jobs = 2;
  opts.shard_target_ops = 16;
  ParallelAnalyzer par(names, raw.timer_bits, raw.timer_clock_hz, opts);
  par.Feed(raw.events);
  const std::size_t planned = par.shards_planned();
  EXPECT_GE(planned, 4u);
  (void)par.Finish(raw.overflowed);
}

TEST(ParallelAnalysis, EmptyFeedIsHarmless) {
  const TagFile& names = MakeNames();
  ParallelAnalyzer par(names);
  par.Feed(nullptr, 0);
  par.FeedChunk(TraceChunk{});
  const DecodedTrace d = par.Finish();
  EXPECT_EQ(d.event_count, 0u);
  EXPECT_TRUE(d.per_function.empty());
}

// --- ThreadPool ------------------------------------------------------------

TEST(ThreadPool, RunsEveryJobExactlyOnce) {
  for (unsigned workers : {0u, 1u, 4u}) {
    ThreadPool pool(workers);
    std::atomic<int> sum{0};
    for (int i = 1; i <= 100; ++i) {
      pool.Submit([&sum, i] { sum.fetch_add(i); });
    }
    pool.WaitIdle();
    EXPECT_EQ(sum.load(), 5050) << "workers=" << workers;
  }
}

TEST(ThreadPool, WaitIdleIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.WaitIdle();  // idle pool: returns immediately
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&count] { count.fetch_add(1); });
    }
    pool.WaitIdle();
    EXPECT_EQ(count.load(), 20 * (round + 1));
  }
}

TEST(ThreadPool, ParallelForCoversTheRange) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(200);
  ParallelFor(pool, hits.size(), [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(ThreadPool, InlineModeHasNoThreads) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.workers(), 0u);
  bool ran = false;
  pool.Submit([&ran] { ran = true; });
  EXPECT_TRUE(ran);  // ran synchronously on this thread
  EXPECT_GE(ThreadPool::DefaultJobs(), 1u);
}

}  // namespace
}  // namespace hwprof
