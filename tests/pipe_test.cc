// Pipes: bounded-buffer semantics, blocking hand-offs, EOF/EPIPE, and the
// IPC ping-pong as the profiler sees it.

#include <gtest/gtest.h>

#include "src/analysis/decoder.h"
#include "src/kern/pipe.h"
#include "src/kern/user_env.h"
#include "src/workloads/testbed.h"
#include "src/workloads/workloads.h"

namespace hwprof {
namespace {

TEST(Pipe, ProducerConsumerDeliversEveryByte) {
  Testbed tb;
  Kernel& k = tb.kernel();
  int rfd = -1;
  int wfd = -1;
  const Bytes payload = PatternBytes(64 * 1024, 5);
  Bytes received;
  bool pipe_ok = false;

  k.Spawn("producer", [&](UserEnv& env) {
    pipe_ok = env.Pipe(&rfd, &wfd);
    if (!pipe_ok) {
      return;
    }
    // Hand the read end to the consumer by fd inheritance (same table in
    // this simplified model: the consumer proc shares via capture).
    std::size_t off = 0;
    while (off < payload.size()) {
      const std::size_t chunk = std::min<std::size_t>(3000, payload.size() - off);
      const Bytes part(payload.begin() + static_cast<std::ptrdiff_t>(off),
                       payload.begin() + static_cast<std::ptrdiff_t>(off + chunk));
      ASSERT_GT(env.Write(wfd, part), 0);
      off += chunk;
    }
    env.Close(wfd);
  });
  k.Spawn("consumer", [&](UserEnv& env) {
    // Wait until the pipe exists.
    while (rfd < 0 && !k.stopping()) {
      env.Compute(Msec(1));
    }
    // Read through the producer's fd table entry via the shared pipe: open
    // a mirror descriptor in this process.
    Proc* producer = k.FindProc(1);
    if (producer == nullptr || static_cast<std::size_t>(rfd) >= producer->fds.size()) {
      return;
    }
    std::shared_ptr<Pipe> pipe = producer->fds[static_cast<std::size_t>(rfd)]->pipe;
    while (true) {
      Bytes chunk;
      const long n = k.pipes().Read(*pipe, 4096, &chunk);
      if (n <= 0) {
        break;
      }
      received.insert(received.end(), chunk.begin(), chunk.end());
    }
  });
  k.Run(Sec(10));
  ASSERT_TRUE(pipe_ok);
  EXPECT_EQ(received, payload);
}

TEST(Pipe, WriterBlocksWhenFull) {
  Testbed tb;
  Kernel& k = tb.kernel();
  Nanoseconds write_done = 0;
  Nanoseconds reader_started = 0;
  k.Spawn("writer", [&](UserEnv& env) {
    int rfd = -1;
    int wfd = -1;
    ASSERT_TRUE(env.Pipe(&rfd, &wfd));
    // 8 KiB into a 4 KiB pipe: must block until someone drains.
    env.Write(wfd, Bytes(2 * kPipeBufferBytes, 7));
    write_done = k.Now();
  });
  k.Spawn("drainer", [&](UserEnv& env) {
    env.Compute(Msec(50));
    reader_started = k.Now();
    Proc* writer = k.FindProc(1);
    if (writer == nullptr || writer->fds.empty()) {
      return;
    }
    std::shared_ptr<Pipe> pipe = writer->fds[0]->pipe;
    Bytes sink;
    while (k.pipes().Read(*pipe, 4096, &sink) > 0 && sink.size() < 2 * kPipeBufferBytes) {
    }
  });
  k.Run(Sec(5));
  ASSERT_NE(write_done, 0u);
  EXPECT_GT(write_done, reader_started) << "writer must have waited for the drain";
}

TEST(Pipe, ReadAfterWriterCloseIsEof) {
  Testbed tb;
  Kernel& k = tb.kernel();
  long tail_read = -2;
  k.Spawn("p", [&](UserEnv& env) {
    int rfd = -1;
    int wfd = -1;
    ASSERT_TRUE(env.Pipe(&rfd, &wfd));
    env.Write(wfd, Bytes{1, 2, 3});
    env.Close(wfd);
    Bytes out;
    EXPECT_EQ(env.Read(rfd, 10, &out), 3);
    tail_read = env.Read(rfd, 10, &out);  // EOF now
  });
  k.Run(Sec(1));
  EXPECT_EQ(tail_read, 0);
}

TEST(Pipe, WriteAfterReaderCloseIsEpipe) {
  Testbed tb;
  Kernel& k = tb.kernel();
  long result = 0;
  k.Spawn("p", [&](UserEnv& env) {
    int rfd = -1;
    int wfd = -1;
    ASSERT_TRUE(env.Pipe(&rfd, &wfd));
    env.Close(rfd);
    result = env.Write(wfd, Bytes{1});
  });
  k.Run(Sec(1));
  EXPECT_EQ(result, -1);
}

TEST(Pipe, ReadOnWriteEndRejected) {
  Testbed tb;
  Kernel& k = tb.kernel();
  long r = 0;
  k.Spawn("p", [&](UserEnv& env) {
    int rfd = -1;
    int wfd = -1;
    ASSERT_TRUE(env.Pipe(&rfd, &wfd));
    Bytes out;
    r = env.Read(wfd, 10, &out);
  });
  k.Run(Sec(1));
  EXPECT_EQ(r, -1);
}

TEST(Pipe, PingPongVisibleToProfiler) {
  // The IPC interaction the paper wants to watch: the profile shows
  // pipe_read/pipe_write interleaved with tsleep/wakeup/swtch.
  Testbed tb;
  Kernel& k = tb.kernel();
  tb.Arm();
  std::shared_ptr<Pipe> pipe;
  k.Spawn("producer", [&](UserEnv& env) {
    int rfd = -1;
    int wfd = -1;
    if (!env.Pipe(&rfd, &wfd)) {
      return;
    }
    pipe = k.curproc()->fds[static_cast<std::size_t>(rfd)]->pipe;
    for (int i = 0; i < 20; ++i) {
      env.Write(wfd, Bytes(kPipeBufferBytes, static_cast<std::uint8_t>(i)));
    }
    env.Close(wfd);
  });
  k.Spawn("consumer", [&](UserEnv& env) {
    while (pipe == nullptr && !k.stopping()) {
      env.Compute(Msec(1));
    }
    Bytes sink;
    while (pipe != nullptr && k.pipes().Read(*pipe, 2048, &sink) > 0) {
      sink.clear();
    }
  });
  k.Run(Sec(10));
  DecodedTrace d = Decoder::Decode(tb.StopAndUpload(), tb.tags());
  const FuncStats* wr = d.Stats("pipe_write");
  const FuncStats* rd = d.Stats("pipe_read");
  const FuncStats* swtch = d.Stats("swtch");
  ASSERT_NE(wr, nullptr);
  ASSERT_NE(rd, nullptr);
  ASSERT_NE(swtch, nullptr);
  EXPECT_GE(wr->calls, 20u);
  EXPECT_GT(rd->calls, 40u);
  // The hand-offs show as many voluntary switches.
  EXPECT_GT(swtch->calls, 20u);
  EXPECT_EQ(d.orphan_exits, 0u);
}

}  // namespace
}  // namespace hwprof
