// Unit tests for src/profhw: timer wrap, event RAM, the Profiler board,
// capture serialisation and persistence.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "src/base/rng.h"
#include "src/profhw/event_ram.h"
#include "src/profhw/profiler.h"
#include "src/profhw/raw_trace.h"
#include "src/profhw/smart_socket.h"
#include "src/profhw/usec_timer.h"
#include "src/sim/bus.h"

namespace hwprof {
namespace {

// --- UsecTimer --------------------------------------------------------------------

TEST(UsecTimer, SamplesWholeMicroseconds) {
  UsecTimer timer;  // 24-bit, 1 MHz
  EXPECT_EQ(timer.Sample(0), 0u);
  EXPECT_EQ(timer.Sample(999), 0u);
  EXPECT_EQ(timer.Sample(1000), 1u);
  EXPECT_EQ(timer.Sample(1'500'000), 1500u);
}

TEST(UsecTimer, WrapsAt24Bits) {
  UsecTimer timer;
  // 2^24 µs = ~16.78 s.
  const Nanoseconds wrap = timer.WrapPeriod();
  EXPECT_EQ(wrap, (1ull << 24) * 1000ull);
  EXPECT_EQ(timer.Sample(wrap), 0u);
  EXPECT_EQ(timer.Sample(wrap + 5000), 5u);
}

TEST(UsecTimer, TicksBetweenHandlesWrap) {
  UsecTimer timer;
  // An interval that crosses the wrap: from near the top to just past 0.
  const std::uint32_t before = timer.Mask() - 10;
  const std::uint32_t after = 5;
  EXPECT_EQ(timer.TicksBetween(before, after), 16u);
  EXPECT_EQ(timer.TicksBetween(100, 100), 0u);
  EXPECT_EQ(timer.TicksBetween(100, 101), 1u);
}

TEST(UsecTimer, TicksToNs) {
  UsecTimer timer;
  EXPECT_EQ(timer.TicksToNs(3), 3000u);
}

// Future-work parameterisation: wider counters and faster clocks.
class UsecTimerParamTest : public ::testing::TestWithParam<std::pair<unsigned, std::uint64_t>> {};

TEST_P(UsecTimerParamTest, WrapAndIntervalInvariants) {
  const auto [bits, hz] = GetParam();
  UsecTimer timer(bits, hz);
  EXPECT_EQ(timer.Mask(), bits == 32 ? 0xFFFFFFFFu : ((1u << bits) - 1u));
  // Round trip: an interval below the wrap period is preserved through
  // sample arithmetic.
  Rng rng(bits * 1000 + hz % 997);
  for (int i = 0; i < 200; ++i) {
    const Nanoseconds t0 = rng.NextBelow(100 * kSecond);
    // Keep the gap below one wrap period (the hardware contract) and align
    // to whole ticks so the comparison is exact.
    const std::uint64_t gap_ticks = rng.NextBelow(timer.Mask()) + 1;
    const Nanoseconds t1 = t0 + timer.TicksToNs(gap_ticks);
    const std::uint32_t s0 = timer.Sample(t0);
    const std::uint32_t s1 = timer.Sample(t1);
    const std::uint64_t recovered = timer.TicksBetween(s0, s1);
    // Sampling truncates sub-tick remainders of t0; allow one tick of slack.
    EXPECT_NEAR(static_cast<double>(recovered), static_cast<double>(gap_ticks), 1.0)
        << "bits=" << bits << " hz=" << hz;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Widths, UsecTimerParamTest,
    ::testing::Values(std::make_pair(24u, 1'000'000ull),   // the prototype
                      std::make_pair(16u, 1'000'000ull),   // narrow: fast wrap
                      std::make_pair(32u, 1'000'000ull),   // future work: wide
                      std::make_pair(24u, 4'000'000ull),   // higher precision
                      std::make_pair(24u, 250'000ull)));   // slower clock

TEST(UsecTimerDeath, RejectsSillyWidths) {
  EXPECT_DEATH(UsecTimer(4, 1'000'000), "8..32");
}

// --- EventRam --------------------------------------------------------------------------

TEST(EventRam, StoresUntilFullThenLatchesOverflow) {
  EventRam ram(4);
  EXPECT_TRUE(ram.Store(1, 100));
  EXPECT_TRUE(ram.Store(2, 200));
  EXPECT_TRUE(ram.Store(3, 300));
  EXPECT_TRUE(ram.Store(4, 400));
  EXPECT_FALSE(ram.overflowed());
  EXPECT_FALSE(ram.Store(5, 500));
  EXPECT_TRUE(ram.overflowed());
  EXPECT_EQ(ram.used(), 4u);
  EXPECT_EQ(ram.Contents()[3], (RawEvent{4, 400}));
}

TEST(EventRam, ResetClearsEverything) {
  EventRam ram(2);
  ram.Store(1, 1);
  ram.Store(2, 2);
  ram.Store(3, 3);
  EXPECT_TRUE(ram.overflowed());
  ram.Reset();
  EXPECT_FALSE(ram.overflowed());
  EXPECT_EQ(ram.used(), 0u);
  EXPECT_TRUE(ram.Store(9, 9));
}

TEST(EventRam, DefaultDepthMatchesThePrototype) {
  EventRam ram;
  EXPECT_EQ(ram.depth(), 16384u);
}

// --- Profiler ---------------------------------------------------------------------------

TEST(Profiler, CapturesOnlyWhileArmed) {
  IsaBus bus;
  bus.InstallEpromSocket(0xD0000);
  Profiler profiler;
  profiler.PlugInto(bus);

  bus.Read8(0xD0000 + 10, Usec(1));  // not armed: ignored
  profiler.Arm();
  bus.Read8(0xD0000 + 20, Usec(2));
  bus.Read8(0xD0000 + 21, Usec(3));
  profiler.Disarm();
  bus.Read8(0xD0000 + 30, Usec(4));  // disarmed: ignored

  const RawTrace trace = profiler.Upload();
  ASSERT_EQ(trace.events.size(), 2u);
  EXPECT_EQ(trace.events[0].tag, 20);
  EXPECT_EQ(trace.events[0].timestamp, 2u);
  EXPECT_EQ(trace.events[1].tag, 21);
}

TEST(Profiler, LedsReflectState) {
  IsaBus bus;
  bus.InstallEpromSocket(0xD0000);
  Profiler profiler(ProfilerConfig{.ram_depth = 2});
  profiler.PlugInto(bus);
  EXPECT_FALSE(profiler.led_active());
  profiler.Arm();
  EXPECT_TRUE(profiler.led_active());
  EXPECT_FALSE(profiler.led_overflow());
  bus.Read8(0xD0000, Usec(1));
  bus.Read8(0xD0000, Usec(2));
  bus.Read8(0xD0000, Usec(3));  // overflows
  EXPECT_TRUE(profiler.led_overflow());
  EXPECT_FALSE(profiler.led_active());
  EXPECT_TRUE(profiler.Upload().overflowed);
}

TEST(Profiler, ArmClearsPreviousCapture) {
  IsaBus bus;
  bus.InstallEpromSocket(0xD0000);
  Profiler profiler;
  profiler.PlugInto(bus);
  profiler.Arm();
  bus.Read8(0xD0000 + 1, Usec(1));
  profiler.Disarm();
  profiler.Arm();
  EXPECT_EQ(profiler.events_captured(), 0u);
}

TEST(Profiler, TimestampWrapsWithTheCounter) {
  IsaBus bus;
  bus.InstallEpromSocket(0xD0000);
  Profiler profiler;
  profiler.PlugInto(bus);
  profiler.Arm();
  const Nanoseconds wrap = profiler.timer().WrapPeriod();
  bus.Read8(0xD0000 + 1, wrap - Usec(1));
  bus.Read8(0xD0000 + 2, wrap + Usec(7));
  const RawTrace trace = profiler.Upload();
  ASSERT_EQ(trace.events.size(), 2u);
  EXPECT_EQ(trace.events[0].timestamp, (1u << 24) - 1);
  EXPECT_EQ(trace.events[1].timestamp, 7u);
}

// --- RawTrace serialisation ---------------------------------------------------------------

TEST(RawTrace, SerializeDeserializeRoundTrip) {
  RawTrace trace;
  trace.timer_bits = 24;
  trace.timer_clock_hz = 1'000'000;
  trace.overflowed = true;
  trace.events = {{502, 100}, {503, 0xFFFFFF}, {0, 0}};
  RawTrace loaded;
  ASSERT_TRUE(RawTrace::Deserialize(trace.Serialize(), &loaded));
  EXPECT_EQ(loaded.events, trace.events);
  EXPECT_EQ(loaded.timer_bits, trace.timer_bits);
  EXPECT_EQ(loaded.timer_clock_hz, trace.timer_clock_hz);
  EXPECT_EQ(loaded.overflowed, trace.overflowed);
}

TEST(RawTrace, RoundTripRandomised) {
  Rng rng(1993);
  for (int round = 0; round < 40; ++round) {
    RawTrace trace;
    trace.timer_bits = static_cast<unsigned>(rng.NextInRange(8, 32));
    trace.timer_clock_hz = rng.NextInRange(1, 10'000'000);
    trace.overflowed = rng.NextBool(0.5);
    if (rng.NextBool(0.5)) {
      trace.dropped_events = rng.NextBelow(100000);
    }
    if (rng.NextBool(0.5)) {
      trace.capture_elapsed_ns = rng.NextBelow(100'000'000'000ull);
    }
    const std::uint32_t mask = trace.TimerMask();
    const std::size_t n = rng.NextBelow(200);
    for (std::size_t i = 0; i < n; ++i) {
      // Stored timestamps never exceed the header's timer width — that is
      // exactly what Deserialize validates.
      trace.events.push_back(RawEvent{static_cast<std::uint16_t>(rng.NextBelow(65536)),
                                      static_cast<std::uint32_t>(rng.NextBelow(1u << 24)) & mask});
    }
    RawTrace loaded;
    ASSERT_TRUE(RawTrace::Deserialize(trace.Serialize(), &loaded));
    EXPECT_EQ(loaded.events, trace.events);
    EXPECT_EQ(loaded.dropped_events, trace.dropped_events);
    EXPECT_EQ(loaded.capture_elapsed_ns, trace.capture_elapsed_ns);
    EXPECT_EQ(loaded.overflowed, trace.overflowed);
  }
}

TEST(RawTrace, DeserializeRejectsGarbage) {
  RawTrace out;
  EXPECT_FALSE(RawTrace::Deserialize("", &out));
  EXPECT_FALSE(RawTrace::Deserialize("not-a-capture\n", &out));
  EXPECT_FALSE(RawTrace::Deserialize("hwprof-raw v2 24 1000000 0\n", &out));
  EXPECT_FALSE(RawTrace::Deserialize("hwprof-raw v1 24 1000000 0\n1 2 3\n", &out));
  EXPECT_FALSE(RawTrace::Deserialize("hwprof-raw v1 24 1000000 0\n99999999 1\n", &out));
  EXPECT_FALSE(RawTrace::Deserialize("hwprof-raw v1 99 1000000 0\n", &out));
  EXPECT_FALSE(RawTrace::Deserialize("hwprof-raw v1 24 1000000 0 bogus=1\n", &out));
}

TEST(RawTrace, DeserializeRejectsTimestampsBeyondTheTimerMask) {
  // A 16-bit header cannot carry a 17-bit timestamp: the counter never
  // produced that word.
  RawTrace out;
  std::vector<TraceDiag> diags;
  EXPECT_FALSE(RawTrace::Deserialize("hwprof-raw v1 16 1000000 0\n100 65536\n",
                                     &out, &diags));
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].line, 2);
  EXPECT_NE(diags[0].message.find("exceeds the 16-bit timer mask"),
            std::string::npos);
  // The same value under a wider header is fine.
  EXPECT_TRUE(RawTrace::Deserialize("hwprof-raw v1 24 1000000 0\n100 65536\n", &out));
}

TEST(RawTrace, DeserializeReportsEveryBadLineWithItsNumber) {
  RawTrace out;
  std::vector<TraceDiag> diags;
  EXPECT_FALSE(RawTrace::Deserialize(
      "hwprof-raw v1 24 1000000 0\n100 10\njunk\n100 20\n1 2 3\n", &out, &diags));
  ASSERT_EQ(diags.size(), 2u);
  EXPECT_EQ(diags[0].line, 3);
  EXPECT_EQ(diags[1].line, 5);
  EXPECT_FALSE(diags[0].message.empty());
}

TEST(RawTrace, SalvageKeepsGoodEventsAndCountsCorruptWords) {
  RawTrace out;
  std::vector<TraceDiag> diags;
  std::uint64_t corrupt = 0;
  ASSERT_TRUE(RawTrace::DeserializeSalvage(
      "hwprof-raw v1 24 1000000 0\n100 10\njunk\n100 20\n1 2 3\n", &out, &diags,
      &corrupt));
  EXPECT_EQ(corrupt, 2u);
  EXPECT_EQ(diags.size(), 2u);
  ASSERT_EQ(out.events.size(), 2u);
  EXPECT_EQ(out.events[0], (RawEvent{100, 10}));
  EXPECT_EQ(out.events[1], (RawEvent{100, 20}));
}

// --- Smart socket file persistence -----------------------------------------------------------

TEST(SmartSocket, SaveLoadRoundTrip) {
  RawTrace trace;
  trace.events = {{1386, 42}, {1387, 99}};
  const std::string path = ::testing::TempDir() + "/capture.hwprof";
  ASSERT_TRUE(SaveCapture(trace, path));
  RawTrace loaded;
  ASSERT_TRUE(LoadCapture(path, &loaded));
  EXPECT_EQ(loaded.events, trace.events);
  std::remove(path.c_str());
}

TEST(SmartSocket, LoadMissingFileFails) {
  RawTrace out;
  EXPECT_FALSE(LoadCapture("/nonexistent/path/x.hwprof", &out));
}

}  // namespace
}  // namespace hwprof
