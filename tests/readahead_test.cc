// breada read-ahead and the update daemon.

#include <gtest/gtest.h>

#include "src/kern/fs.h"
#include "src/kern/user_env.h"
#include "src/workloads/testbed.h"
#include "src/workloads/workloads.h"

namespace hwprof {
namespace {

Nanoseconds SequentialReadTime(bool read_ahead) {
  Testbed tb;
  Kernel& k = tb.kernel();
  k.fs().SetReadAhead(read_ahead);
  constexpr std::size_t kBytes = 40 * kFsBlockBytes;
  k.fs().InstallFile("/seq", PatternBytes(kBytes));
  auto took = std::make_shared<Nanoseconds>(0);
  auto ok = std::make_shared<bool>(false);
  k.Spawn("reader", [took, ok, &k](UserEnv& env) {
    const int fd = env.Open("/seq", false);
    const Nanoseconds t0 = k.Now();
    Bytes out;
    long total = 0;
    while (true) {
      const long n = env.Read(fd, kFsBlockBytes, &out);
      if (n <= 0) {
        break;
      }
      total += n;
      // Per-block processing the read-ahead can overlap with.
      env.Compute(3 * kMillisecond);
    }
    *took = k.Now() - t0;
    *ok = total == static_cast<long>(kBytes) && out == PatternBytes(kBytes);
  });
  k.Run(Sec(60));
  EXPECT_TRUE(*ok) << "data corrupted (read_ahead=" << read_ahead << ")";
  return *took;
}

TEST(ReadAhead, OverlapsDiskWithProcessing) {
  const Nanoseconds without = SequentialReadTime(false);
  const Nanoseconds with = SequentialReadTime(true);
  ASSERT_NE(without, 0u);
  ASSERT_NE(with, 0u);
  // With 3 ms of per-block processing overlapped against ~10 ms of disk,
  // read-ahead should shave a clearly measurable slice.
  EXPECT_LT(with, without - Msec(50)) << "read-ahead gained nothing";
}

TEST(ReadAhead, DataIdenticalEitherWay) {
  // Covered inside SequentialReadTime's verification; this pins the two
  // modes against each other on a fresh rig for clarity.
  EXPECT_GT(SequentialReadTime(true), 0u);
}

TEST(UpdateDaemon, FlushesDirtyBuffersWithinItsPeriod) {
  TestbedConfig config;
  config.kernel.start_update_daemon = true;
  Testbed tb(config);
  Kernel& k = tb.kernel();
  k.Spawn("writer", [&](UserEnv& env) {
    const int fd = env.Open("/f", true);
    env.Write(fd, PatternBytes(2 * kFsBlockBytes));
    env.Close(fd);
    // No explicit sync: the update daemon must do it.
  });
  k.Run(Sec(40));  // > one 30 s update period
  // Everything the writer dirtied reached the disk.
  EXPECT_GE(k.fs().disk().writes_completed(), 2u);
}

TEST(UpdateDaemon, OffByDefault) {
  Testbed tb;
  EXPECT_EQ(tb.kernel().FindProc(1), nullptr);  // no processes spawned at boot
}

}  // namespace
}  // namespace hwprof
