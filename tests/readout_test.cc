// ZIF in-band readout: byte-exact equality with the battery-backed upload,
// cost accounting, and capture isolation while in readout mode.

#include <gtest/gtest.h>

#include "src/analysis/decoder.h"
#include "src/instr/readout.h"
#include "src/kern/user_env.h"
#include "src/workloads/testbed.h"
#include "src/workloads/workloads.h"

namespace hwprof {
namespace {

TEST(Readout, MatchesUploadExactly) {
  Testbed tb;
  Kernel& k = tb.kernel();
  tb.Arm();
  RunForkExec(tb, 2, Sec(5));
  tb.profiler().Disarm();
  const RawTrace uploaded = tb.profiler().Upload();
  ASSERT_GT(uploaded.events.size(), 100u);

  const RawTrace in_band = InBandReadout(tb.machine(), tb.instr(), tb.profiler());
  EXPECT_EQ(in_band.events, uploaded.events);
  EXPECT_EQ(in_band.timer_bits, uploaded.timer_bits);
  EXPECT_EQ(in_band.overflowed, uploaded.overflowed);
  (void)k;
}

TEST(Readout, ReadoutModeDoesNotCaptureItsOwnReads) {
  Testbed tb;
  tb.Arm();
  tb.kernel().Run(Msec(200));
  tb.profiler().Disarm();
  const std::size_t before = tb.profiler().events_captured();
  InBandReadout(tb.machine(), tb.instr(), tb.profiler());
  EXPECT_EQ(tb.profiler().events_captured(), before);
}

TEST(Readout, CostsRealBusTime) {
  Testbed tb;
  tb.Arm();
  tb.kernel().Run(Msec(500));
  tb.profiler().Disarm();
  const std::size_t events = tb.profiler().events_captured();
  ASSERT_GT(events, 50u);
  const Nanoseconds before = tb.machine().Now();
  InBandReadout(tb.machine(), tb.instr(), tb.profiler());
  const Nanoseconds spent = tb.machine().Now() - before;
  // 5 bytes per event plus the header, one ~200 ns bus cycle each.
  const Nanoseconds floor = static_cast<Nanoseconds>(events) * 5 *
                            tb.machine().cost().trigger_read_ns;
  EXPECT_GE(spent, floor);
  EXPECT_LT(spent, floor * 3);
}

TEST(Readout, EmptyCaptureReadsBack) {
  Testbed tb;
  tb.Arm();
  tb.profiler().Disarm();
  const RawTrace in_band = InBandReadout(tb.machine(), tb.instr(), tb.profiler());
  EXPECT_TRUE(in_band.events.empty());
}

TEST(Readout, FullPipelineThroughDecoder) {
  // The fast-turnaround workflow end to end: capture -> in-band readout ->
  // decode. The summary must match one decoded from the manual upload.
  Testbed tb;
  tb.Arm();
  RunNetworkReceive(tb, Sec(1), 32 * 1024, false);
  tb.profiler().Disarm();
  const RawTrace uploaded = tb.profiler().Upload();
  const RawTrace in_band = InBandReadout(tb.machine(), tb.instr(), tb.profiler());
  DecodedTrace a = Decoder::Decode(uploaded, tb.tags());
  DecodedTrace b = Decoder::Decode(in_band, tb.tags());
  EXPECT_EQ(a.per_function.size(), b.per_function.size());
  for (const auto& [name, stats] : a.per_function) {
    const FuncStats* other = b.Stats(name);
    ASSERT_NE(other, nullptr) << name;
    EXPECT_EQ(stats.calls, other->calls) << name;
    EXPECT_EQ(stats.net, other->net) << name;
  }
}

}  // namespace
}  // namespace hwprof
