// Summary, code-path trace report, grouping and histogram formatting.

#include <gtest/gtest.h>

#include "src/analysis/decoder.h"
#include "src/base/assert.h"
#include "src/analysis/grouping.h"
#include "src/analysis/histogram.h"
#include "src/analysis/summary.h"
#include "src/analysis/trace_report.h"
#include "src/instr/tag_file.h"

namespace hwprof {
namespace {

// The decoded traces point into the names file, so it must outlive them:
// keep one for the whole test binary.
const TagFile& MakeNames() {
  static const TagFile* names = [] {
    auto* file = new TagFile();
    HWPROF_CHECK(TagFile::Parse(
        "alpha/100\nbeta/102\nsplnet/104\nsplx/106\nswtch/200!\nMARK/300=\n", file));
    return file;
  }();
  return *names;
}

DecodedTrace MakeDecoded() {
  RawTrace raw;
  // alpha [0..100] with beta [20..60]; idle window [120..220]; beta [230..280].
  raw.events = {{100, 0},   {102, 20},  {103, 60},  {101, 100}, {100, 110},
                {200, 120}, {201, 220}, {102, 230}, {103, 280}, {101, 300}};
  return Decoder::Decode(raw, MakeNames());
}

TEST(Summary, HeaderNumbersAreConsistent) {
  DecodedTrace d = MakeDecoded();
  Summary s(d);
  EXPECT_EQ(s.elapsed_us(), 300u);
  EXPECT_EQ(s.idle_us(), 100u);
  EXPECT_EQ(s.run_us(), 200u);
  EXPECT_EQ(s.tag_count(), 10u);
}

TEST(Summary, RowsSortedByNetDescending) {
  DecodedTrace d = MakeDecoded();
  Summary s(d);
  ASSERT_GE(s.rows().size(), 2u);
  for (std::size_t i = 1; i < s.rows().size(); ++i) {
    EXPECT_GE(s.rows()[i - 1].net_us, s.rows()[i].net_us);
  }
}

TEST(Summary, RowContents) {
  DecodedTrace d = MakeDecoded();
  Summary s(d);
  const SummaryRow* beta = s.Row("beta");
  ASSERT_NE(beta, nullptr);
  EXPECT_EQ(beta->calls, 2u);
  EXPECT_EQ(beta->net_us, 90u);  // 40 + 50
  EXPECT_EQ(beta->min_us, 40u);
  EXPECT_EQ(beta->max_us, 50u);
  EXPECT_EQ(beta->avg_us, 45u);
  EXPECT_NEAR(beta->pct_real, 100.0 * 90 / 300, 0.01);
  EXPECT_NEAR(beta->pct_net, 100.0 * 90 / 200, 0.01);
}

TEST(Summary, FormatLooksLikeFigure3) {
  DecodedTrace d = MakeDecoded();
  Summary s(d);
  const std::string text = s.Format();
  EXPECT_NE(text.find("Elapsed time = 0 sec 300 us (10 tags)"), std::string::npos);
  EXPECT_NE(text.find("Accumulated run time ="), std::string::npos);
  EXPECT_NE(text.find("Idle time ="), std::string::npos);
  EXPECT_NE(text.find("% real"), std::string::npos);
  EXPECT_NE(text.find("beta"), std::string::npos);
  // Percent columns carry the % sign as in the paper.
  EXPECT_NE(text.find('%'), std::string::npos);
}

TEST(Summary, TopNLimitsRows) {
  DecodedTrace d = MakeDecoded();
  Summary s(d);
  const std::string all = s.Format();
  const std::string top1 = s.Format(1);
  EXPECT_GT(all.size(), top1.size());
}

TEST(TraceReport, ShowsEntriesExitsAndContextSwitch) {
  DecodedTrace d = MakeDecoded();
  const std::string text = TraceReport::Format(d);
  EXPECT_NE(text.find("-> alpha"), std::string::npos);
  EXPECT_NE(text.find("-> beta"), std::string::npos);
  EXPECT_NE(text.find("---- Context switch in ----"), std::string::npos);
  // alpha has children, so it gets an exit line.
  EXPECT_NE(text.find("<- alpha"), std::string::npos);
}

TEST(TraceReport, IndentationTracksDepth) {
  DecodedTrace d = MakeDecoded();
  TraceReportOptions opts;
  opts.indent_width = 4;
  const std::string text = TraceReport::Format(d, opts);
  // beta nested under alpha: its line is indented deeper.
  const auto alpha_at = text.find("-> alpha");
  const auto beta_at = text.find("-> beta");
  ASSERT_NE(alpha_at, std::string::npos);
  ASSERT_NE(beta_at, std::string::npos);
  // Count spaces before the arrow on each line.
  auto indent_of = [&](std::size_t pos) {
    std::size_t line_start = text.rfind('\n', pos);
    line_start = line_start == std::string::npos ? 0 : line_start + 1;
    // Skip the timestamp (up to the first space after "0:000 000").
    return pos - line_start;
  };
  EXPECT_GT(indent_of(beta_at), indent_of(alpha_at));
}

TEST(TraceReport, MaxLinesTruncates) {
  DecodedTrace d = MakeDecoded();
  TraceReportOptions opts;
  opts.max_lines = 2;
  const std::string text = TraceReport::Format(d, opts);
  EXPECT_NE(text.find("..."), std::string::npos);
  // 2 lines + ellipsis.
  int newlines = 0;
  for (char c : text) {
    newlines += c == '\n';
  }
  EXPECT_EQ(newlines, 3);
}

TEST(TraceReport, InlineMarkerRendering) {
  RawTrace raw;
  raw.events = {{100, 0}, {300, 10}, {101, 20}};
  DecodedTrace d = Decoder::Decode(raw, MakeNames());
  const std::string text = TraceReport::Format(d);
  EXPECT_NE(text.find("== MARK"), std::string::npos);
}

TEST(Grouping, SplGroupAggregation) {
  DecodedTrace d = MakeDecoded();
  Grouping g(d, Grouping::SplGroup(d));
  const GroupRow* spl = g.Row("spl*");
  // MakeDecoded has no spl time; build one that does.
  RawTrace raw;
  raw.events = {{100, 0}, {104, 10}, {105, 20}, {106, 30}, {107, 35}, {101, 50}};
  DecodedTrace d2 = Decoder::Decode(raw, MakeNames());
  Grouping g2(d2, Grouping::SplGroup(d2));
  const GroupRow* spl2 = g2.Row("spl*");
  ASSERT_NE(spl2, nullptr);
  EXPECT_EQ(spl2->net_us, 15u);  // splnet 10 + splx 5
  EXPECT_EQ(spl2->calls, 2u);
  const GroupRow* other = g2.Row("other");
  ASSERT_NE(other, nullptr);
  EXPECT_EQ(other->net_us, 35u);
  (void)spl;
}

TEST(Grouping, FormatContainsRows) {
  DecodedTrace d = MakeDecoded();
  std::map<std::string, std::string> groups{{"alpha", "hot"}};
  Grouping g(d, groups);
  const std::string text = g.Format();
  EXPECT_NE(text.find("hot"), std::string::npos);
  EXPECT_NE(text.find("other"), std::string::npos);  // beta is unmapped
}

TEST(Grouping, ContextSwitchNetNeverJoinsAGroup) {
  // swtch's net is the idle account; neither the "other" bucket nor an
  // explicit mapping may absorb it (idle shifts would read as subsystem
  // regressions in the differential report).
  DecodedTrace d = MakeDecoded();
  Grouping g(d, {{"alpha", "hot"}, {"beta", "hot"}, {"swtch", "sched"}});
  EXPECT_EQ(g.Row("sched"), nullptr);
  EXPECT_EQ(g.Row("other"), nullptr);
  const GroupRow* hot = g.Row("hot");
  ASSERT_NE(hot, nullptr);
  EXPECT_EQ(hot->net_us, 190u);  // alpha 100 + beta 90, none of the idle
}

TEST(Histogram, BucketsAreLog2) {
  EXPECT_EQ(Histogram::BucketFloor(0), 0u);
  EXPECT_EQ(Histogram::BucketFloor(1), 1u);
  EXPECT_EQ(Histogram::BucketFloor(2), 2u);
  EXPECT_EQ(Histogram::BucketFloor(3), 4u);
  EXPECT_EQ(Histogram::BucketFloor(11), 1024u);
}

TEST(Histogram, AddPlacesValues) {
  Histogram h;
  h.Add(0);
  h.Add(1);
  h.Add(3);
  h.Add(1000);
  h.Add(1024);
  EXPECT_EQ(h.Total(), 5u);
  EXPECT_EQ(h.Count(0), 1u);  // 0
  EXPECT_EQ(h.Count(1), 1u);  // 1
  EXPECT_EQ(h.Count(2), 1u);  // 2..3
  EXPECT_EQ(h.Count(10), 1u);  // 512..1023
  EXPECT_EQ(h.Count(11), 1u);  // 1024..2047
}

TEST(Histogram, ForFunctionCollectsPerCallNets) {
  DecodedTrace d = MakeDecoded();
  Histogram h = Histogram::ForFunction(d, "beta");
  EXPECT_EQ(h.Total(), 2u);
  const std::string text = h.Format("beta per-call net");
  EXPECT_NE(text.find("beta per-call net (2 calls)"), std::string::npos);
  EXPECT_NE(text.find('#'), std::string::npos);
}

TEST(Histogram, BimodalDistributionVisible) {
  // The paper's bcopy under network load: many tiny copies plus the
  // millisecond driver copies — two distinct populated buckets.
  Histogram h;
  for (int i = 0; i < 100; ++i) {
    h.Add(3);
  }
  for (int i = 0; i < 50; ++i) {
    h.Add(1045);
  }
  int populated = 0;
  for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
    populated += h.Count(b) > 0;
  }
  EXPECT_EQ(populated, 2);
}

}  // namespace
}  // namespace hwprof
