// Robustness: the analyser must survive arbitrary garbage captures, and
// one kernel instance must survive every workload run back-to-back.

#include <gtest/gtest.h>

#include <memory>

#include "src/analysis/callgraph.h"
#include "src/analysis/decoder.h"
#include "src/analysis/histogram.h"
#include "src/analysis/process_report.h"
#include "src/analysis/summary.h"
#include "src/analysis/trace_report.h"
#include "src/base/rng.h"
#include "src/kern/fs.h"
#include "src/kern/net_hosts.h"
#include "src/kern/nfs.h"
#include "src/kern/tty.h"
#include "src/kern/user_env.h"
#include "src/workloads/testbed.h"
#include "src/workloads/workloads.h"

namespace hwprof {
namespace {

class DecoderFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DecoderFuzzTest, ArbitraryCapturesNeverCrashTheToolchain) {
  // Random tags (many unknown, many mismatched entries/exits, random
  // context-switch events) with random timestamps — the decoder and every
  // report must run to completion with sane invariants.
  static const TagFile* names = [] {
    auto* file = new TagFile();
    HWPROF_CHECK(TagFile::Parse(
        "f0/100\nf1/102\nf2/104\nf3/106\nswtch/200!\nM0/300=\nM1/301=\n", file));
    return file;
  }();
  Rng rng(GetParam());
  RawTrace raw;
  raw.overflowed = rng.NextBool(0.5);
  const std::size_t n = rng.NextBelow(3000);
  for (std::size_t i = 0; i < n; ++i) {
    RawEvent e;
    if (rng.NextBool(0.7)) {
      // Valid-ish tags, but not necessarily balanced.
      const std::uint16_t known[] = {100, 101, 102, 103, 104, 105, 106, 107,
                                     200, 201, 300, 301};
      e.tag = known[rng.NextBelow(sizeof(known) / sizeof(known[0]))];
    } else {
      e.tag = static_cast<std::uint16_t>(rng.NextBelow(65536));
    }
    e.timestamp = static_cast<std::uint32_t>(rng.NextBelow(1u << 24));
    raw.events.push_back(e);
  }

  DecodedTrace d = Decoder::Decode(raw, *names);
  // Invariants even on garbage:
  EXPECT_LE(d.idle_time, d.ElapsedTotal());
  for (const auto& [name, stats] : d.per_function) {
    (void)name;
    EXPECT_LE(stats.net, stats.elapsed);
    EXPECT_LE(stats.min_net, stats.max_net);
  }
  // Every report formats without dying.
  Summary s(d);
  EXPECT_FALSE(s.Format(5).empty());
  TraceReportOptions opts;
  opts.max_lines = 100;
  TraceReport::Format(d, opts);
  CallGraph(d).Format(d, 5);
  ProcessReport(d).Format(d);
  Histogram::ForFunction(d, "f0").Format("f0");
}

INSTANTIATE_TEST_SUITE_P(Seeds, DecoderFuzzTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u, 55u, 89u));

TEST(Robustness, OneKernelSurvivesEveryWorkloadBackToBack) {
  // A single rig runs network receive, fork/exec, file I/O, NFS, tty input
  // and TCP transmit in sequence; the capture decodes cleanly at the end.
  Testbed tb;
  Kernel& k = tb.kernel();
  tb.Arm();

  // 1. Network receive.
  NetReceiveResult net = RunNetworkReceive(tb, Sec(2), 64 * 1024);
  EXPECT_TRUE(net.integrity_ok);

  // 2. Fork/exec.
  ForkExecResult fork_exec = RunForkExec(tb, 2, Sec(5));
  EXPECT_EQ(fork_exec.iterations_done, 2);

  // 3. File write + read-back.
  bool file_ok = false;
  k.Spawn("files", [&](UserEnv& env) {
    const int fd = env.Open("/seq", true);
    const Bytes data = PatternBytes(3 * kFsBlockBytes, 9);
    env.Write(fd, data);
    env.Close(fd);
    const int rd = env.Open("/seq", false);
    Bytes out;
    while (env.Read(rd, 16 * 1024, &out) > 0) {
    }
    file_ok = out == data;
  });
  k.Run(k.Now() + Sec(5));
  EXPECT_TRUE(file_ok);

  // 4. NFS read.
  auto server = std::make_shared<NfsServerHost>(tb.machine(), k.wire());
  const std::uint32_t fh = server->Export("r", PatternBytes(16 * 1024, 2));
  bool nfs_ok = false;
  k.Spawn("nfs", [&](UserEnv& env) {
    k.nfs().Init();
    Bytes out;
    nfs_ok = env.NfsRead(fh, 0, 16 * 1024, &out) == 16 * 1024 &&
             out == PatternBytes(16 * 1024, 2);
  });
  k.Run(k.Now() + Sec(10));
  EXPECT_TRUE(nfs_ok);

  // 5. Terminal input.
  auto term = std::make_unique<TerminalHost>(k);
  std::string line;
  k.Spawn("getty", [&](UserEnv& env) { line = env.ReadTtyLine(); });
  term->Type("done\n", k.Now() + Msec(10), Msec(3));
  k.Run(k.Now() + Sec(1));
  EXPECT_EQ(line, "done");

  // 6. TCP transmit.
  auto receiver = std::make_shared<ReceiverHost>(tb.machine(), k.wire(), 7100);
  const Bytes out_data = PatternBytes(32 * 1024, 6);
  k.Spawn("tx", [&](UserEnv& env) {
    const int fd = env.Socket(true);
    if (env.Connect(fd, kSenderIpAddr, 7100)) {
      env.Send(fd, out_data);
      env.Shutdown(fd);
    }
  });
  k.Run(k.Now() + Sec(10));
  EXPECT_EQ(receiver->received(), out_data);

  // The combined capture decodes cleanly (overflowed long ago).
  RawTrace raw = tb.StopAndUpload();
  EXPECT_TRUE(raw.overflowed);
  DecodedTrace d = Decoder::Decode(raw, tb.tags());
  EXPECT_EQ(d.unknown_tags, 0u);
  EXPECT_EQ(d.orphan_exits, 0u);
}

}  // namespace
}  // namespace hwprof
