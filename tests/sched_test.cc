// Scheduler, fibers, tsleep/wakeup, preemption and process lifecycle.

#include <gtest/gtest.h>

#include <vector>

#include "src/kern/clock.h"
#include "src/kern/fs.h"
#include "src/kern/fiber.h"
#include "src/kern/sched.h"
#include "src/kern/user_env.h"
#include "src/workloads/testbed.h"
#include "src/workloads/workloads.h"

namespace hwprof {
namespace {

// --- Fiber primitives ----------------------------------------------------------

TEST(Fiber, SwitchRoundTrip) {
  Fiber main_fiber;
  std::vector<int> order;
  Fiber worker([&order] { order.push_back(2); });
  worker.set_exit_to(&main_fiber);
  order.push_back(1);
  Fiber::Switch(main_fiber, worker);
  order.push_back(3);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_TRUE(worker.finished());
}

TEST(Fiber, NestedSwitches) {
  Fiber main_fiber;
  std::vector<int> order;
  Fiber* back_to = &main_fiber;
  Fiber b([&] {
    order.push_back(20);
  });
  Fiber a([&] {
    order.push_back(10);
    b.set_exit_to(back_to);
    // a -> b; b finishes straight to main, a never resumes.
    Fiber dummy;
    Fiber::Switch(dummy, b);
  });
  a.set_exit_to(&main_fiber);
  Fiber::Switch(main_fiber, a);
  EXPECT_EQ(order, (std::vector<int>{10, 20}));
}

// --- Process lifecycle ------------------------------------------------------------

TEST(Sched, SpawnedProcessRunsAndExits) {
  Testbed tb;
  Kernel& k = tb.kernel();
  bool ran = false;
  k.Spawn("p", [&ran](UserEnv& env) {
    env.Compute(1 * kMillisecond);
    ran = true;
  });
  k.Run(Msec(100));
  EXPECT_TRUE(ran);
}

TEST(Sched, ProcessesInterleaveViaSleep) {
  Testbed tb;
  Kernel& k = tb.kernel();
  std::vector<int> order;
  // Two procs alternating through tsleep/wakeup on each other.
  Proc* p1 = nullptr;
  Proc* p2 = nullptr;
  p1 = k.Spawn("a", [&](UserEnv& env) {
    (void)env;
    for (int i = 0; i < 3; ++i) {
      order.push_back(1);
      k.sched().Wakeup(&order);
      k.sched().Tsleep(&order, "ping", Msec(50));
    }
    k.sched().Wakeup(&order);
  });
  p2 = k.Spawn("b", [&](UserEnv& env) {
    (void)env;
    for (int i = 0; i < 3; ++i) {
      order.push_back(2);
      k.sched().Wakeup(&order);
      k.sched().Tsleep(&order, "pong", Msec(50));
    }
  });
  (void)p1;
  (void)p2;
  k.Run(Sec(2));
  ASSERT_GE(order.size(), 5u);
  // Strict alternation: 1,2,1,2...
  for (std::size_t i = 1; i < order.size(); ++i) {
    EXPECT_NE(order[i], order[i - 1]) << "at " << i;
  }
}

TEST(Sched, TsleepTimeoutFires) {
  Testbed tb;
  Kernel& k = tb.kernel();
  int result = -1;
  Nanoseconds slept_for = 0;
  k.Spawn("sleeper", [&](UserEnv& env) {
    (void)env;
    const Nanoseconds t0 = k.Now();
    result = k.sched().Tsleep(&result, "never", Msec(50));
    slept_for = k.Now() - t0;
  });
  k.Run(Sec(1));
  EXPECT_EQ(result, kSleepTimedOut);
  // Callout wheel rounds up to ticks; allow generous slack.
  EXPECT_GE(slept_for, Msec(40));
  EXPECT_LE(slept_for, Msec(120));
}

TEST(Sched, WakeupBeatsTimeout) {
  Testbed tb;
  Kernel& k = tb.kernel();
  int result = -1;
  int chan = 0;
  k.Spawn("sleeper", [&](UserEnv& env) {
    (void)env;
    result = k.sched().Tsleep(&chan, "chan", Sec(5));
  });
  k.Spawn("waker", [&](UserEnv& env) {
    env.Compute(5 * kMillisecond);
    k.sched().Wakeup(&chan);
  });
  k.Run(Sec(1));
  EXPECT_EQ(result, kSleepOk);
}

TEST(Sched, RoundRobinPreemptsCpuHogs) {
  Testbed tb;
  Kernel& k = tb.kernel();
  Nanoseconds end_a = 0;
  Nanoseconds end_b = 0;
  k.Spawn("hog-a", [&](UserEnv& env) {
    env.Compute(Msec(400));
    end_a = k.Now();
  });
  k.Spawn("hog-b", [&](UserEnv& env) {
    env.Compute(Msec(400));
    end_b = k.Now();
  });
  k.Run(Sec(3));
  ASSERT_NE(end_a, 0u);
  ASSERT_NE(end_b, 0u);
  // With round-robin both finish near t=800ms, close together — not one
  // after the other (which would put them ~400ms apart).
  const Nanoseconds gap = end_a > end_b ? end_a - end_b : end_b - end_a;
  EXPECT_LT(gap, Msec(150));
  EXPECT_GT(k.sched().preemptions(), 3u);
}

TEST(Sched, WaitReapsZombieChild) {
  Testbed tb;
  Kernel& k = tb.kernel();
  int reaped_pid = -1;
  int status = -1;
  int child_pid = -1;
  k.Spawn("parent", [&](UserEnv& env) {
    child_pid = env.Vfork([](UserEnv& child) {
      child.Compute(1 * kMillisecond);
      child.Exit(42);
    });
    reaped_pid = env.Wait(&status);
  });
  k.Run(Sec(2));
  EXPECT_GT(child_pid, 0);
  EXPECT_EQ(reaped_pid, child_pid);
  EXPECT_EQ(status, 42);
  EXPECT_EQ(k.FindProc(child_pid), nullptr);  // gone from the table
}

TEST(Sched, WaitWithNoChildrenReturnsError) {
  Testbed tb;
  Kernel& k = tb.kernel();
  int r = 0;
  k.Spawn("lonely", [&](UserEnv& env) { r = env.Wait(); });
  k.Run(Msec(200));
  EXPECT_EQ(r, -1);
}

TEST(Sched, RunCanBeCalledRepeatedly) {
  Testbed tb;
  Kernel& k = tb.kernel();
  int laps = 0;
  k.Spawn("laps", [&](UserEnv& env) {
    for (int i = 0; i < 10; ++i) {
      env.Compute(Msec(30));
      ++laps;
    }
  });
  k.Run(Msec(100));
  const int after_first = laps;
  EXPECT_GT(after_first, 0);
  EXPECT_LT(after_first, 10);  // stopped mid-flight
  k.Run(Msec(600));
  EXPECT_EQ(laps, 10);  // resumed where it left off
}

TEST(Sched, VforkBlocksParentUntilExec) {
  Testbed tb;
  Kernel& k = tb.kernel();
  k.fs().InstallFile("/bin/x", PatternBytes(8 * 1024));
  Nanoseconds parent_resumed = 0;
  Nanoseconds child_execed = 0;
  k.Spawn("parent", [&](UserEnv& env) {
    env.Vfork([&child_execed, &k](UserEnv& child) {
      child.Execve("/bin/x");
      child_execed = k.Now();
      child.Compute(Msec(100));  // long-running child
      child.Exit(0);
    });
    parent_resumed = k.Now();
    env.Wait();
  });
  k.Run(Sec(3));
  ASSERT_NE(parent_resumed, 0u);
  ASSERT_NE(child_execed, 0u);
  // vfork semantics: the parent resumes only after the exec, but does not
  // wait for the child's whole life.
  EXPECT_GE(parent_resumed, child_execed);
  EXPECT_LT(parent_resumed, child_execed + Msec(50));
}

}  // namespace
}  // namespace hwprof
