// The hwprofd soak: 100+ concurrent uploader threads push mixed text/binary
// captures (with injected malformed and inadmissible payloads) through one
// IngestService, then the driver audits the daemon against its own
// contracts — zero silent drops in uploads AND bytes, accepted fully
// accounted as summaries + malformed, the queue's peak byte level inside
// the configured backpressure budget, and every cached summary
// byte-identical to an offline decode of the same payload. The same driver
// backs CI's soak-smoke job (`hwprofd soak` under ASan/UBSan).

#include <gtest/gtest.h>

#include <cstddef>
#include <string>

#include "src/service/ingest.h"
#include "src/service/soak.h"

namespace hwprof {
namespace service {
namespace {

TEST(ServiceSoak, HundredUploadersZeroSilentDropsBoundedMemory) {
  SoakOptions options;
  options.uploaders = 100;
  options.uploads_per_uploader = 3;
  options.tenants = 8;
  options.distinct_captures = 12;
  options.events_per_capture = 1200;
  options.seed = 42;
  options.service.workers = 4;
  const SoakReport report = RunSoak(options);
  EXPECT_TRUE(report.ok()) << report.FormatJson();

  // Spelled out so a failure names the broken contract, not just ok()==false.
  EXPECT_EQ(report.silent_drops, 0u);
  EXPECT_EQ(report.silent_drop_bytes, 0u);
  EXPECT_EQ(report.stats.accepted,
            report.stats.summaries + report.stats.malformed);
  EXPECT_EQ(report.stats.malformed, report.malformed_accepted);
  EXPECT_EQ(report.summary_mismatches, 0u);
  EXPECT_GT(report.verified_summaries, 0u);
  EXPECT_LE(report.stats.peak_queue_bytes, report.queue_byte_budget);
  EXPECT_EQ(report.stats.offered, 300u);
  // Re-uploads of the distinct-capture pool must be served from cache.
  EXPECT_GT(report.stats.cache_hits, 0u);
  // The report is the CI artifact; it must carry the windowed metrics.
  EXPECT_NE(report.metrics_json.find("\"metrics\":"), std::string::npos);
}

TEST(ServiceSoak, SqueezedQueueStillAccountsEveryByte) {
  // A deliberately tiny byte budget forces real kQueueFull backpressure
  // under concurrency; the invariants must hold with drops in the mix.
  SoakOptions options;
  options.uploaders = 24;
  options.uploads_per_uploader = 4;
  options.tenants = 3;
  options.distinct_captures = 6;
  options.events_per_capture = 1500;
  options.seed = 7;
  options.service.workers = 2;
  options.service.queue_max_depth = 2;
  options.service.queue_max_bytes = 64 * 1024;
  const SoakReport report = RunSoak(options);
  EXPECT_EQ(report.silent_drops, 0u) << report.FormatJson();
  EXPECT_EQ(report.silent_drop_bytes, 0u);
  EXPECT_EQ(report.stats.accepted,
            report.stats.summaries + report.stats.malformed);
  EXPECT_LE(report.stats.peak_queue_bytes, report.queue_byte_budget);
  EXPECT_EQ(report.summary_mismatches, 0u);
}

TEST(ServiceSoak, SynthTraceIsDeterministicPerSeed) {
  // The pool generator underpins the offline-equivalence audit: same seed,
  // same bytes; different seeds, different captures.
  EXPECT_EQ(SynthTrace(3, 500).Serialize(), SynthTrace(3, 500).Serialize());
  EXPECT_NE(SynthTrace(3, 500).Serialize(), SynthTrace(4, 500).Serialize());
}

}  // namespace
}  // namespace service
}  // namespace hwprof
