// hwprofd's ingest service and observability plane: typed drop accounting
// (nothing leaves the service without landing in a named counter), the
// decoded-summary cache, health transitions, ingest-ID propagation through
// the event log, the ops protocol (pinned by goldens under a frozen clock
// with synchronous workers), the local-socket transport, and the SNMP
// publication of the service's deterministic self-snapshot.
//
// To regenerate the ops goldens after an intentional change:
//   HWPROF_REGEN_GOLDEN=1 ./build/tests/service_test

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "src/analysis/decoder.h"
#include "src/analysis/summary.h"
#include "src/base/strings.h"
#include "src/profhw/binary_trace.h"
#include "src/service/ingest.h"
#include "src/service/ops.h"
#include "src/service/ops_socket.h"
#include "src/service/soak.h"
#include "src/snmp/mib.h"
#include "src/snmp/telemetry_mib.h"

namespace hwprof {
namespace service {
namespace {

std::string GoldenPath(const std::string& name) {
  return std::string(HWPROF_TEST_DIR) + "/golden/" + name;
}

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

void CheckGolden(const std::string& name, const std::string& actual) {
  const std::string path = GoldenPath(name);
  if (std::getenv("HWPROF_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << actual;
    ASSERT_TRUE(out.good()) << "write to " << path << " failed";
    GTEST_SKIP() << "regenerated " << name;
  }
  std::string expected;
  ASSERT_TRUE(ReadFile(path, &expected))
      << path << " is missing; run with HWPROF_REGEN_GOLDEN=1 to create it";
  EXPECT_EQ(actual, expected)
      << name << " drifted; if the change is intentional, regenerate with "
      << "HWPROF_REGEN_GOLDEN=1";
}

// Frozen service clock: starts at 1s and advances 1ms per observation, so
// every run of the synchronous (workers=0) scenario sees identical
// timestamps and the rendered ops responses are byte-stable.
struct FrozenClock {
  std::uint64_t t_ns = 1'000'000'000ull;
  std::function<std::uint64_t()> fn() {
    return [this] {
      t_ns += 1'000'000ull;
      return t_ns;
    };
  }
};

ServiceOptions SyncOptions(FrozenClock* clock) {
  ServiceOptions options;
  options.workers = 0;  // decode inline in Submit(): deterministic ordering
  options.max_upload_bytes = 100'000;
  options.summary_rows = 5;
  options.clock = clock->fn();
  return options;
}

// The scripted scenario behind every ops golden: two tenants, one text and
// one binary capture, a cache hit, one drop of each admission flavour and
// one malformed payload.
void RunScriptedUploads(IngestService* service) {
  const std::string text = SynthTrace(1, 400).Serialize();
  const std::string binary = EncodeCaptureBinary(SynthTrace(2, 300));
  EXPECT_TRUE(service->Submit("alpha", text).accepted);
  service->Tick();
  EXPECT_TRUE(service->Submit("beta", binary).accepted);
  EXPECT_TRUE(service->Submit("alpha", text).accepted);  // cache hit
  EXPECT_EQ(service->Submit("beta", "").reason, DropReason::kEmpty);
  EXPECT_EQ(service->Submit("beta", std::string(100'001, 'x')).reason,
            DropReason::kOversize);
  EXPECT_TRUE(service->Submit("gamma", "this is not a capture\n").accepted);
  service->Tick();
}

TEST(ServiceOps, StatusGolden) {
  FrozenClock clock;
  IngestService service(SoakNames(), SyncOptions(&clock));
  RunScriptedUploads(&service);
  CheckGolden("ops_status.golden", HandleOpsCommand(service, "STATUS"));
}

TEST(ServiceOps, HealthGolden) {
  FrozenClock clock;
  IngestService service(SoakNames(), SyncOptions(&clock));
  RunScriptedUploads(&service);
  CheckGolden("ops_health.golden", HandleOpsCommand(service, "HEALTH"));
}

TEST(ServiceOps, TenantsGolden) {
  FrozenClock clock;
  IngestService service(SoakNames(), SyncOptions(&clock));
  RunScriptedUploads(&service);
  CheckGolden("ops_tenants.golden", HandleOpsCommand(service, "TENANTS"));
}

TEST(ServiceOps, MetricsGolden) {
  FrozenClock clock;
  IngestService service(SoakNames(), SyncOptions(&clock));
  RunScriptedUploads(&service);
  CheckGolden("ops_metrics.golden", HandleOpsCommand(service, "METRICS"));
}

TEST(ServiceOps, EventsGolden) {
  FrozenClock clock;
  IngestService service(SoakNames(), SyncOptions(&clock));
  RunScriptedUploads(&service);
  CheckGolden("ops_events.golden", HandleOpsCommand(service, "EVENTS 0"));
}

TEST(ServiceOps, IngestTrailGolden) {
  FrozenClock clock;
  IngestService service(SoakNames(), SyncOptions(&clock));
  RunScriptedUploads(&service);
  CheckGolden("ops_ingest.golden", HandleOpsCommand(service, "INGEST 1"));
}

TEST(ServiceOps, ErrorsAreTyped) {
  FrozenClock clock;
  IngestService service(SoakNames(), SyncOptions(&clock));
  EXPECT_EQ(HandleOpsCommand(service, ""), "ERR empty command\n");
  EXPECT_EQ(HandleOpsCommand(service, "BOGUS"),
            "ERR unknown command: BOGUS\n");
  EXPECT_EQ(HandleOpsCommand(service, "METRICS nope"),
            "ERR METRICS window must be a non-negative integer\n");
  // A window whose ns conversion would wrap uint64 is an error, not a
  // silently tiny window (UINT64_MAX/1e9 ~ 18446744073 seconds).
  EXPECT_EQ(HandleOpsCommand(service, "METRICS 18446744074"),
            "ERR METRICS window too large (use 0 for the whole ring)\n");
  EXPECT_NE(HandleOpsCommand(service, "METRICS 18446744073").substr(0, 3),
            "ERR");
  EXPECT_EQ(HandleOpsCommand(service, "INGEST nope"),
            "ERR INGEST id must be a non-negative integer\n");
  // Every success response ends with the OK terminator line.
  for (const char* cmd : {"STATUS", "HEALTH", "TENANTS", "METRICS", "EVENTS",
                          "INGEST 1"}) {
    const std::string response = HandleOpsCommand(service, cmd);
    ASSERT_GE(response.size(), 3u) << cmd;
    EXPECT_EQ(response.substr(response.size() - 3), "OK\n") << cmd;
  }
}

TEST(ServiceIngest, TypedDropAccountingBalancesExactly) {
  FrozenClock clock;
  IngestService service(SoakNames(), SyncOptions(&clock));
  RunScriptedUploads(&service);
  const ServiceStats s = service.Stats();
  // The service-edge invariant, in uploads and in bytes.
  EXPECT_EQ(s.offered, s.accepted + s.DroppedTotal());
  EXPECT_EQ(s.offered_bytes, s.accepted_bytes + s.dropped_bytes);
  // And the pipeline invariant: everything admitted was fully processed.
  EXPECT_EQ(s.accepted, s.summaries + s.malformed);
  EXPECT_EQ(s.dropped[static_cast<std::size_t>(DropReason::kEmpty)], 1u);
  EXPECT_EQ(s.dropped[static_cast<std::size_t>(DropReason::kOversize)], 1u);
  EXPECT_EQ(s.malformed, 1u);
  EXPECT_EQ(s.cache_hits, 1u);
  EXPECT_GT(s.decoded_events, 0u);
  // Per-tenant rows sum to the totals.
  std::uint64_t offered = 0;
  std::uint64_t accepted = 0;
  for (const auto& [name, tc] : s.tenants) {
    offered += tc.offered;
    accepted += tc.accepted;
    EXPECT_EQ(tc.offered, tc.accepted + tc.DroppedTotal()) << name;
  }
  EXPECT_EQ(offered, s.offered);
  EXPECT_EQ(accepted, s.accepted);
}

TEST(ServiceIngest, CachedSummaryMatchesOfflineDecode) {
  FrozenClock clock;
  IngestService service(SoakNames(), SyncOptions(&clock));
  const RawTrace raw = SynthTrace(7, 600);
  const std::string payload = raw.Serialize();
  EXPECT_TRUE(service.Submit("alpha", payload).accepted);
  EXPECT_TRUE(service.Submit("beta", payload).accepted);  // served from cache

  const ServiceStats s = service.Stats();
  EXPECT_EQ(s.summaries, 2u);
  EXPECT_EQ(s.cache_hits, 1u);
  EXPECT_EQ(s.cache_entries, 1u);

  UploadOutcome outcome;
  ASSERT_TRUE(
      service.LookupOutcome(IngestService::HashPayload(payload), &outcome));
  const DecodedTrace offline = Decoder::Decode(raw, SoakNames());
  EXPECT_EQ(outcome.summary, Summary(offline).Format(5))
      << "service summary diverged from the offline decode";
  EXPECT_EQ(outcome.events, offline.event_count);
}

TEST(ServiceIngest, CacheEvictsLeastRecentlyUsed) {
  FrozenClock clock;
  ServiceOptions options = SyncOptions(&clock);
  options.cache_capacity = 2;
  IngestService service(SoakNames(), options);
  const std::string a = SynthTrace(11, 200).Serialize();
  const std::string b = SynthTrace(12, 200).Serialize();
  const std::string c = SynthTrace(13, 200).Serialize();
  service.Submit("t", a);
  service.Submit("t", b);
  service.Submit("t", c);  // evicts a
  UploadOutcome outcome;
  EXPECT_FALSE(service.LookupOutcome(IngestService::HashPayload(a), &outcome));
  EXPECT_TRUE(service.LookupOutcome(IngestService::HashPayload(b), &outcome));
  EXPECT_TRUE(service.LookupOutcome(IngestService::HashPayload(c), &outcome));
  EXPECT_EQ(service.Stats().cache_entries, 2u);
}

TEST(ServiceIngest, CacheHitRefreshesRecency) {
  FrozenClock clock;
  ServiceOptions options = SyncOptions(&clock);
  options.cache_capacity = 2;
  IngestService service(SoakNames(), options);
  const std::string a = SynthTrace(21, 200).Serialize();
  const std::string b = SynthTrace(22, 200).Serialize();
  const std::string c = SynthTrace(23, 200).Serialize();
  service.Submit("t", a);
  service.Submit("t", b);
  service.Submit("t", a);  // cache hit: a becomes most recent
  service.Submit("t", c);  // must evict b, not a
  UploadOutcome outcome;
  EXPECT_TRUE(service.LookupOutcome(IngestService::HashPayload(a), &outcome));
  EXPECT_FALSE(service.LookupOutcome(IngestService::HashPayload(b), &outcome));
  EXPECT_TRUE(service.LookupOutcome(IngestService::HashPayload(c), &outcome));
  EXPECT_EQ(service.Stats().cache_hits, 1u);
}

TEST(ServiceIngest, RejectOversizeAccountsWithoutPayload) {
  FrozenClock clock;
  IngestService service(SoakNames(), SyncOptions(&clock));
  // A declared size far beyond any allocatable payload still lands in the
  // same typed counters and event log as a Submit()-time oversize drop.
  const SubmitResult r =
      service.RejectOversize("liar", 99'999'999'999'999'999ull);
  EXPECT_FALSE(r.accepted);
  EXPECT_EQ(r.reason, DropReason::kOversize);
  EXPECT_GT(r.ingest_id, 0u);
  const ServiceStats s = service.Stats();
  EXPECT_EQ(s.offered, 1u);
  EXPECT_EQ(s.dropped[static_cast<std::size_t>(DropReason::kOversize)], 1u);
  EXPECT_EQ(s.offered_bytes, s.accepted_bytes + s.dropped_bytes);
  const std::vector<LogEvent> trail =
      service.event_log().ForIngest(r.ingest_id);
  ASSERT_EQ(trail.size(), 1u);
  EXPECT_NE(trail[0].detail.find("reason=oversize"), std::string::npos);
}

TEST(ServiceIngest, BackpressureIsATypedQueueFullDrop) {
  // queue_max_depth=0 with real workers rejects every enqueue before any
  // worker can race to drain it — the deterministic way to hit the limit.
  FrozenClock clock;
  ServiceOptions options = SyncOptions(&clock);
  options.workers = 1;
  options.queue_max_depth = 0;
  IngestService service(SoakNames(), options);
  const SubmitResult r = service.Submit("t", SynthTrace(3, 100).Serialize());
  EXPECT_FALSE(r.accepted);
  EXPECT_EQ(r.reason, DropReason::kQueueFull);
  service.Stop();
  const ServiceStats s = service.Stats();
  EXPECT_EQ(s.dropped[static_cast<std::size_t>(DropReason::kQueueFull)], 1u);
  EXPECT_EQ(s.offered, s.accepted + s.DroppedTotal());
  EXPECT_EQ(s.offered_bytes, s.accepted_bytes + s.dropped_bytes);
}

TEST(ServiceIngest, HealthTransitionsReadyDegradedDraining) {
  FrozenClock clock;
  IngestService service(SoakNames(), SyncOptions(&clock));
  EXPECT_EQ(service.health(), Health::kReady);
  EXPECT_EQ(service.HealthDetail(), "ok");

  EXPECT_TRUE(service.Submit("t", "garbage payload\n").accepted);
  EXPECT_EQ(service.health(), Health::kDegraded)
      << "a malformed admission must degrade health";
  EXPECT_EQ(service.HealthDetail(), "drops=0 malformed=1");

  service.BeginDrain();
  EXPECT_EQ(service.health(), Health::kDraining);
  const SubmitResult r = service.Submit("t", SynthTrace(4, 100).Serialize());
  EXPECT_FALSE(r.accepted);
  EXPECT_EQ(r.reason, DropReason::kDraining);

  service.Stop();
  EXPECT_EQ(service.health(), Health::kDraining);
  const ServiceStats s = service.Stats();
  EXPECT_EQ(s.dropped[static_cast<std::size_t>(DropReason::kDraining)], 1u);
}

TEST(ServiceIngest, IngestIdPropagatesCaptureDecodeSummary) {
  FrozenClock clock;
  IngestService service(SoakNames(), SyncOptions(&clock));
  const SubmitResult r = service.Submit("alpha", SynthTrace(5, 300).Serialize());
  ASSERT_TRUE(r.accepted);
  const std::vector<LogEvent> trail = service.event_log().ForIngest(r.ingest_id);
  ASSERT_EQ(trail.size(), 3u);
  EXPECT_EQ(trail[0].stage, "capture");
  EXPECT_EQ(trail[1].stage, "decode");
  EXPECT_EQ(trail[2].stage, "summary");
  for (const LogEvent& e : trail) {
    EXPECT_EQ(e.ingest_id, r.ingest_id);
    EXPECT_EQ(e.tenant, "alpha");
  }
  // Drops leave a trail too: the drop reason lands in the capture stage.
  const SubmitResult drop = service.Submit("alpha", "");
  ASSERT_FALSE(drop.accepted);
  const std::vector<LogEvent> drop_trail =
      service.event_log().ForIngest(drop.ingest_id);
  ASSERT_EQ(drop_trail.size(), 1u);
  EXPECT_EQ(drop_trail[0].stage, "capture");
  EXPECT_NE(drop_trail[0].detail.find("reason=empty"), std::string::npos);
}

TEST(ServiceIngest, SelfSnapshotFeedsTheSnmpSubtree) {
  FrozenClock clock;
  IngestService service(SoakNames(), SyncOptions(&clock));
  RunScriptedUploads(&service);

  const obs::Snapshot snap = service.SelfSnapshot();
  const ServiceStats s = service.Stats();
  EXPECT_EQ(snap.CounterValue("svc.offered"), s.offered);
  EXPECT_EQ(snap.CounterValue("svc.accepted"), s.accepted);
  EXPECT_EQ(snap.CounterValue("svc.drop.empty"), 1u);
  EXPECT_EQ(snap.CounterValue("svc.drop.oversize"), 1u);
  EXPECT_EQ(snap.CounterValue("svc.malformed"), 1u);

  // Published through the same MIB machinery the agent serves, the upload
  // size ladder surfaces percentile leaves (.5/.6/.7) a station can poll.
  BTreeMib mib;
  PopulateTelemetryMib(snap, &mib);
  const Oid root = ProfTelemetryRoot();
  Oid at = root;
  Oid row_oid;
  while (const MibEntry* e = mib.GetNext(at)) {
    if (e->oid.size() == root.size() + 4 && e->value == "svc.upload_bytes") {
      row_oid = e->oid;
      break;
    }
    at = e->oid;
  }
  ASSERT_FALSE(row_oid.empty()) << "svc.upload_bytes row not published";
  Oid p50_oid = row_oid;
  p50_oid[root.size() + 2] = 5;  // name column -> p50 column
  const MibEntry* p50 = mib.Get(p50_oid);
  ASSERT_NE(p50, nullptr);
  EXPECT_NE(p50->value, "0") << "upload-size p50 should be nonzero";

  // The self-snapshot is deterministic: same state, same bytes.
  EXPECT_EQ(service.SelfSnapshot().FormatJson(), snap.FormatJson());
}

TEST(ServiceSocket, UploadAndQueryRoundTrip) {
  FrozenClock clock;
  IngestService service(SoakNames(), SyncOptions(&clock));
  const std::string path = ::testing::TempDir() + "/hwprofd_test.sock";
  std::remove(path.c_str());
  OpsServer server(service, path);
  ASSERT_TRUE(server.Start()) << server.last_error();

  std::uint64_t ingest_id = 0;
  std::string drop_reason;
  std::string error;
  ASSERT_TRUE(OpsUpload(path, "alpha", SynthTrace(6, 300).Serialize(),
                        &ingest_id, &drop_reason, &error))
      << error << " " << drop_reason;
  EXPECT_GT(ingest_id, 0u);

  // The reply's ingest ID keys the trail the daemon retains.
  const std::string trail =
      OpsQuery(path, StrFormat("INGEST %llu",
                               static_cast<unsigned long long>(ingest_id)),
               &error);
  EXPECT_NE(trail.find("\"stage\":\"summary\""), std::string::npos) << trail;

  EXPECT_EQ(OpsQuery(path, "HEALTH", &error), "ready ok\nOK\n");

  // A typed drop travels back over the wire with its reason.
  EXPECT_FALSE(
      OpsUpload(path, "alpha", "", &ingest_id, &drop_reason, &error));
  EXPECT_EQ(drop_reason, "empty");

  server.Stop();
  service.Stop();
}

TEST(ServiceSocket, OversizeHeaderRejectedWithoutBuffering) {
  FrozenClock clock;
  IngestService service(SoakNames(), SyncOptions(&clock));  // cap = 100'000
  const std::string path = ::testing::TempDir() + "/hwprofd_oversize.sock";
  std::remove(path.c_str());
  OpsServer server(service, path);
  ASSERT_TRUE(server.Start()) << server.last_error();

  std::string error;
  // A lying header declaring an unallocatable size must get a typed DROP
  // reply, not resize(nbytes) the daemon to death. OpsQuery frames exactly
  // the hostile shape: the header line with no payload behind it.
  const std::string reply =
      OpsQuery(path, "UPLOAD liar 99999999999999999", &error);
  EXPECT_EQ(reply.substr(0, 14), "DROP oversize ") << reply << error;

  // A genuinely oversize payload still round-trips its typed reason: the
  // server replies from the header alone and drains the body.
  std::uint64_t ingest_id = 0;
  std::string drop_reason;
  EXPECT_FALSE(OpsUpload(path, "alpha", std::string(100'001, 'x'), &ingest_id,
                         &drop_reason, &error))
      << error;
  EXPECT_EQ(drop_reason, "oversize");

  // The daemon survived both and still serves; nothing dropped silently.
  EXPECT_EQ(OpsQuery(path, "HEALTH", &error).substr(0, 8), "degraded");
  const ServiceStats s = service.Stats();
  EXPECT_EQ(s.dropped[static_cast<std::size_t>(DropReason::kOversize)], 2u);
  EXPECT_EQ(s.offered, s.accepted + s.DroppedTotal());
  EXPECT_EQ(s.offered_bytes, s.accepted_bytes + s.dropped_bytes);

  server.Stop();
  service.Stop();
}

TEST(ServiceSocket, StopUnblocksSilentConnections) {
  FrozenClock clock;
  IngestService service(SoakNames(), SyncOptions(&clock));
  const std::string path = ::testing::TempDir() + "/hwprofd_silent.sock";
  std::remove(path.c_str());
  OpsServer server(service, path);
  ASSERT_TRUE(server.Start()) << server.last_error();

  // A client that connects and sends nothing must not pin its handler
  // thread: Stop() shutdown()s the fd so the blocked read returns, well
  // before the 10s receive timeout would.
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  ASSERT_LT(path.size(), sizeof(addr.sun_path));
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)),
      0);
  // Give the accept loop a moment to hand the fd to a handler thread.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  const auto t0 = std::chrono::steady_clock::now();
  server.Stop();
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_LT(elapsed, std::chrono::seconds(5))
      << "Stop() must not wait out the connection read timeout";
  ::close(fd);
  service.Stop();
}

}  // namespace
}  // namespace service
}  // namespace hwprof
