// Unit tests for src/sim: clock, event queue, CPU, bus decode, address map.

#include <gtest/gtest.h>

#include <vector>

#include "src/sim/bus.h"
#include "src/sim/cost_model.h"
#include "src/sim/cpu.h"
#include "src/sim/event_queue.h"
#include "src/sim/machine.h"
#include "src/sim/time.h"

namespace hwprof {
namespace {

// --- VirtualClock -----------------------------------------------------------------

TEST(VirtualClock, AdvancesMonotonically) {
  VirtualClock clock;
  EXPECT_EQ(clock.Now(), 0u);
  clock.Advance(5);
  clock.AdvanceTo(10);
  EXPECT_EQ(clock.Now(), 10u);
}

TEST(VirtualClockDeath, RefusesToGoBackwards) {
  VirtualClock clock;
  clock.AdvanceTo(10);
  EXPECT_DEATH(clock.AdvanceTo(9), "backwards");
}

// --- EventQueue --------------------------------------------------------------------

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.ScheduleAt(30, [&] { order.push_back(3); });
  q.ScheduleAt(10, [&] { order.push_back(1); });
  q.ScheduleAt(20, [&] { order.push_back(2); });
  q.RunDue(100);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, EqualTimesRunInScheduleOrder) {
  EventQueue q;
  std::vector<int> order;
  q.ScheduleAt(10, [&] { order.push_back(1); });
  q.ScheduleAt(10, [&] { order.push_back(2); });
  q.ScheduleAt(10, [&] { order.push_back(3); });
  q.RunDue(10);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, RunDueStopsAtNow) {
  EventQueue q;
  int fired = 0;
  q.ScheduleAt(10, [&] { ++fired; });
  q.ScheduleAt(20, [&] { ++fired; });
  q.RunDue(15);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(q.NextTime(), 20u);
}

TEST(EventQueue, CancelPreventsRun) {
  EventQueue q;
  int fired = 0;
  const auto id = q.ScheduleAt(10, [&] { ++fired; });
  EXPECT_TRUE(q.Cancel(id));
  EXPECT_FALSE(q.Cancel(id));  // second cancel is a no-op
  q.RunDue(100);
  EXPECT_EQ(fired, 0);
}

TEST(EventQueue, EventsMayScheduleMoreDueEvents) {
  EventQueue q;
  int fired = 0;
  q.ScheduleAt(10, [&] {
    ++fired;
    q.ScheduleAt(10, [&] { ++fired; });  // same instant, newly due
  });
  q.RunDue(10);
  EXPECT_EQ(fired, 2);
}

TEST(EventQueue, NextTimeEmptyIsNever) {
  EventQueue q;
  EXPECT_EQ(q.NextTime(), EventQueue::kNever);
  EXPECT_TRUE(q.Empty());
}

// --- Cpu -----------------------------------------------------------------------------

TEST(Cpu, UseAdvancesClockAndAccountsBusy) {
  VirtualClock clock;
  EventQueue q;
  Cpu cpu(&clock, &q);
  cpu.Use(1000);
  EXPECT_EQ(clock.Now(), 1000u);
  EXPECT_EQ(cpu.busy_ns(), 1000u);
  EXPECT_EQ(cpu.idle_ns(), 0u);
}

TEST(Cpu, EventsFireAtTheirInstantDuringUse) {
  VirtualClock clock;
  EventQueue q;
  Cpu cpu(&clock, &q);
  Nanoseconds fired_at = 0;
  q.ScheduleAt(400, [&] { fired_at = clock.Now(); });
  cpu.Use(1000);
  EXPECT_EQ(fired_at, 400u);
  EXPECT_EQ(clock.Now(), 1000u);
}

TEST(Cpu, InterruptServiceExtendsTheWorkWindow) {
  VirtualClock clock;
  EventQueue q;
  Cpu cpu(&clock, &q);
  bool pending = false;
  cpu.SetInterruptHook([&] {
    if (pending) {
      pending = false;
      cpu.Use(500);  // interrupt handler consumes CPU
    }
  });
  q.ScheduleAt(300, [&] { pending = true; });
  cpu.Use(1000);
  // The preempted work still completes its full 1000ns: total = 1500.
  EXPECT_EQ(clock.Now(), 1500u);
  EXPECT_EQ(cpu.busy_ns(), 1500u);
}

TEST(Cpu, IdleWaitAccountsIdleSeparately) {
  VirtualClock clock;
  EventQueue q;
  Cpu cpu(&clock, &q);
  int fired = 0;
  q.ScheduleAt(700, [&] { ++fired; });
  EXPECT_TRUE(cpu.IdleWait(1000));
  EXPECT_EQ(clock.Now(), 700u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(cpu.idle_ns(), 700u);
  EXPECT_EQ(cpu.busy_ns(), 0u);
  // Nothing left: idles through to the deadline.
  EXPECT_FALSE(cpu.IdleWait(1000));
  EXPECT_EQ(clock.Now(), 1000u);
}

// --- IsaBus / EPROM tap -----------------------------------------------------------------

class RecordingTap : public EpromTapListener {
 public:
  void OnEpromRead(std::uint16_t addr, Nanoseconds now) override {
    reads.push_back({addr, now});
  }
  std::vector<std::pair<std::uint16_t, Nanoseconds>> reads;
};

TEST(IsaBus, DecodesSocketWindowReads) {
  IsaBus bus;
  bus.InstallEpromSocket(0xD0000);
  RecordingTap tap;
  bus.AddTapListener(&tap);
  bus.Read8(0xD0000 + 1386, 100);
  bus.Read8(0xD0000 + 0xFFFF, 200);
  bus.Read8(0xC0000, 300);  // outside the window: not decoded
  ASSERT_EQ(tap.reads.size(), 2u);
  EXPECT_EQ(tap.reads[0].first, 1386);
  EXPECT_EQ(tap.reads[0].second, 100u);
  EXPECT_EQ(tap.reads[1].first, 0xFFFF);
  EXPECT_EQ(bus.eprom_read_count(), 2u);
}

TEST(IsaBus, RemoveTapListenerStopsDelivery) {
  IsaBus bus;
  bus.InstallEpromSocket(0xD0000);
  RecordingTap tap;
  bus.AddTapListener(&tap);
  bus.Read8(0xD0000, 1);
  bus.RemoveTapListener(&tap);
  bus.Read8(0xD0000, 2);
  EXPECT_EQ(tap.reads.size(), 1u);
}

TEST(IsaBusDeath, SocketMustSitInsideIsaHole) {
  IsaBus bus;
  EXPECT_DEATH(bus.InstallEpromSocket(0x10000), "ISA memory hole");
}

// --- AddressMap (Figure 2) ---------------------------------------------------------------

TEST(AddressMap, IsaWindowFollowsKernelRoundedToPages) {
  AddressMap map;
  map.MapKernel(600 * 1024);  // exactly page aligned
  const std::uint32_t base = map.IsaVirtualBase();
  EXPECT_EQ(base, AddressMap::kKernelBase + 600 * 1024 +
                      AddressMap::kFixedPages * AddressMap::kPageSize);
}

TEST(AddressMap, KernelSizeChangesTheWindow) {
  AddressMap small_map;
  AddressMap big_map;
  small_map.MapKernel(600 * 1024);
  big_map.MapKernel(600 * 1024 + 1);  // one byte more: one page more
  EXPECT_EQ(big_map.IsaVirtualBase(), small_map.IsaVirtualBase() + AddressMap::kPageSize);
}

TEST(AddressMap, TranslatesInsideWindowOnly) {
  AddressMap map;
  map.MapKernel(4096);
  const std::uint32_t base = map.IsaVirtualBase();
  std::uint32_t phys = 0;
  EXPECT_TRUE(map.VirtualToIsaPhys(base, &phys));
  EXPECT_EQ(phys, kIsaHoleBase);
  EXPECT_TRUE(map.VirtualToIsaPhys(base + 0x30000, &phys));
  EXPECT_EQ(phys, kIsaHoleBase + 0x30000);
  EXPECT_FALSE(map.VirtualToIsaPhys(base - 1, &phys));
  EXPECT_FALSE(map.VirtualToIsaPhys(base + (kIsaHoleEnd - kIsaHoleBase), &phys));
}

// --- Machine ----------------------------------------------------------------------------

TEST(Machine, TriggerReadReachesTheSocket) {
  Machine machine;
  machine.address_map().MapKernel(600 * 1024);
  RecordingTap tap;
  machine.bus().AddTapListener(&tap);
  const std::uint32_t profile_base = machine.address_map().IsaVirtualBase() +
                                     (kDefaultEpromSocketPhys - kIsaHoleBase);
  machine.TriggerRead(profile_base + 502);
  ASSERT_EQ(tap.reads.size(), 1u);
  EXPECT_EQ(tap.reads[0].first, 502);
  // The trigger costs what the paper measured (~200 ns per trigger).
  EXPECT_EQ(machine.Now(), machine.cost().trigger_read_ns);
}

TEST(Machine, TriggerOutsideWindowIsInert) {
  Machine machine;
  machine.address_map().MapKernel(600 * 1024);
  RecordingTap tap;
  machine.bus().AddTapListener(&tap);
  machine.TriggerRead(0x1000);  // nowhere near the remapped ISA hole
  EXPECT_TRUE(tap.reads.empty());
}

// --- CostModel ------------------------------------------------------------------------------

TEST(CostModel, DerivedHelpersScaleLinearly) {
  const CostModel m = CostModel::I386Dx40();
  EXPECT_EQ(m.MainCopy(1000), 1000 * m.main_copy_ns_per_byte);
  EXPECT_EQ(m.Isa8Copy(1500), 1500 * m.isa8_ns_per_byte);
  // The headline calibration: a 1500-byte driver copy is ~1045 µs.
  EXPECT_NEAR(static_cast<double>(m.Isa8Copy(1500)) / 1000.0, 1045.0, 10.0);
  // ISA is ~18x slower than DRAM ("up to 20 times slower").
  EXPECT_GT(m.isa8_ns_per_byte, 15 * m.main_copy_ns_per_byte);
  EXPECT_LT(m.isa8_ns_per_byte, 20 * m.main_copy_ns_per_byte);
}

TEST(CostModel, ChecksumRates) {
  const CostModel m = CostModel::I386Dx40();
  // Unoptimised C checksum beats nothing; data in controller memory is
  // worse; assembler is close to copy speed.
  EXPECT_LT(m.Checksum(1024, false), m.Checksum(1024, true));
  const CostModel asm_model = CostModel::I386Dx40AsmCksum();
  EXPECT_LT(asm_model.Checksum(1024, false), m.Checksum(1024, false) / 3);
}

TEST(CostModel, EtherWireRate) {
  const CostModel m = CostModel::I386Dx40();
  // 10 Mb/s: 1518 bytes ≈ 1.2 ms + IFG.
  EXPECT_NEAR(static_cast<double>(m.EtherWire(1518)) / 1e6, 1.22, 0.05);
}

}  // namespace
}  // namespace hwprof
