// End-to-end smoke tests: boot the rig, run workloads, capture and decode.

#include <gtest/gtest.h>

#include "src/analysis/decoder.h"
#include "src/kern/clock.h"
#include "src/kern/net.h"
#include "src/analysis/summary.h"
#include "src/analysis/trace_report.h"
#include "src/workloads/testbed.h"
#include "src/workloads/workloads.h"

namespace hwprof {
namespace {

TEST(Smoke, BootAndIdle) {
  Testbed tb;
  Kernel& k = tb.kernel();
  tb.Arm();
  k.Run(Sec(1));
  EXPECT_GE(k.Now(), Sec(1));
  // 100 Hz clock: ~100 ticks in a second.
  EXPECT_GE(k.clocksys().ticks(), 95u);
  EXPECT_LE(k.clocksys().ticks(), 105u);
  // The profiler saw the clock interrupt triggers.
  RawTrace raw = tb.StopAndUpload();
  EXPECT_GT(raw.events.size(), 300u);  // ISAINTR+hardclock+gatherstats pairs
  DecodedTrace decoded = Decoder::Decode(raw, tb.tags());
  EXPECT_EQ(decoded.unknown_tags, 0u);
  const FuncStats* hc = decoded.Stats("hardclock");
  ASSERT_NE(hc, nullptr);
  EXPECT_GE(hc->calls, 90u);
}

TEST(Smoke, NetworkReceiveDeliversVerifiedStream) {
  Testbed tb;
  tb.Arm();
  NetReceiveResult res = RunNetworkReceive(tb, Sec(3), 256 * 1024);
  EXPECT_TRUE(res.integrity_ok);
  EXPECT_GT(res.bytes_received, 0u);
  RawTrace raw = tb.StopAndUpload();
  DecodedTrace decoded = Decoder::Decode(raw, tb.tags());
  Summary summary(decoded);
  // The receive path's signature functions all appear.
  for (const char* fn : {"bcopy", "in_cksum", "tcp_input", "ipintr", "soreceive",
                         "weintr", "splnet"}) {
    EXPECT_NE(summary.Row(fn), nullptr) << fn;
  }
  // swtch is accounted as the Idle header, not a row.
  EXPECT_EQ(summary.Row("swtch"), nullptr);
  EXPECT_NE(decoded.Stats("swtch"), nullptr);
}

}  // namespace
}  // namespace hwprof
