// The SNMP case study: B-tree correctness (property-tested against a
// reference map), linear/B-tree equivalence, comparison-count scaling, and
// the agent serving verified replies end to end through the network stack.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>

#include "src/base/rng.h"
#include "src/kern/net.h"
#include "src/kern/user_env.h"
#include "src/obs/telemetry.h"
#include "src/snmp/agent.h"
#include "src/snmp/mib.h"
#include "src/snmp/telemetry_mib.h"
#include "src/workloads/testbed.h"
#include "src/workloads/workloads.h"

namespace hwprof {
namespace {

struct OidLess {
  bool operator()(const Oid& a, const Oid& b) const { return CompareOid(a, b) < 0; }
};

Oid RandomOid(Rng& rng) {
  Oid oid;
  const std::size_t len = 1 + rng.NextBelow(8);
  for (std::size_t i = 0; i < len; ++i) {
    oid.push_back(static_cast<std::uint32_t>(rng.NextBelow(20)));
  }
  return oid;
}

TEST(Oid, CompareIsLexicographic) {
  EXPECT_EQ(CompareOid({1, 3, 6}, {1, 3, 6}), 0);
  EXPECT_LT(CompareOid({1, 3}, {1, 3, 6}), 0);   // prefix sorts first
  EXPECT_GT(CompareOid({1, 4}, {1, 3, 6}), 0);
  EXPECT_LT(CompareOid({}, {0}), 0);
  EXPECT_EQ(OidToString({1, 3, 6, 1}), "1.3.6.1");
}

class MibEquivalenceTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MibEquivalenceTest, BothStoresMatchAReferenceMap) {
  Rng rng(GetParam());
  LinearMib linear;
  BTreeMib btree;
  std::map<Oid, std::string, OidLess> reference;

  // Random inserts (with duplicates, exercising replacement).
  for (int i = 0; i < 500; ++i) {
    const Oid oid = RandomOid(rng);
    const std::string value = "v" + std::to_string(i);
    linear.Insert(oid, value);
    btree.Insert(oid, value);
    reference[oid] = value;
  }
  btree.CheckInvariants();
  EXPECT_EQ(linear.size(), reference.size());
  EXPECT_EQ(btree.size(), reference.size());

  // GET agreement on hits and misses.
  for (int i = 0; i < 300; ++i) {
    const Oid probe = RandomOid(rng);
    const auto it = reference.find(probe);
    const MibEntry* from_linear = linear.Get(probe);
    const MibEntry* from_btree = btree.Get(probe);
    if (it == reference.end()) {
      EXPECT_EQ(from_linear, nullptr);
      EXPECT_EQ(from_btree, nullptr);
    } else {
      ASSERT_NE(from_linear, nullptr);
      ASSERT_NE(from_btree, nullptr);
      EXPECT_EQ(from_linear->value, it->second);
      EXPECT_EQ(from_btree->value, it->second);
    }
  }

  // GETNEXT agreement (the MIB-walk operation).
  for (int i = 0; i < 300; ++i) {
    const Oid probe = RandomOid(rng);
    const auto it = reference.upper_bound(probe);
    const MibEntry* from_linear = linear.GetNext(probe);
    const MibEntry* from_btree = btree.GetNext(probe);
    if (it == reference.end()) {
      EXPECT_EQ(from_linear, nullptr);
      EXPECT_EQ(from_btree, nullptr);
    } else {
      ASSERT_NE(from_linear, nullptr);
      ASSERT_NE(from_btree, nullptr);
      EXPECT_EQ(CompareOid(from_linear->oid, it->first), 0);
      EXPECT_EQ(CompareOid(from_btree->oid, it->first), 0);
      EXPECT_EQ(from_btree->value, it->second);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MibEquivalenceTest,
                         ::testing::Values(1u, 7u, 42u, 1993u, 0xDEADu));

TEST(BTreeMib, FullWalkVisitsEverythingInOrder) {
  Rng rng(3);
  BTreeMib btree;
  std::map<Oid, std::string, OidLess> reference;
  for (int i = 0; i < 800; ++i) {
    const Oid oid = RandomOid(rng);
    btree.Insert(oid, "x");
    reference[oid] = "x";
  }
  // Walk with GETNEXT from the root of the namespace.
  Oid cursor;  // empty OID sorts before everything
  std::size_t visited = 0;
  Oid prev;
  while (const MibEntry* e = btree.GetNext(cursor)) {
    if (visited > 0) {
      EXPECT_LT(CompareOid(prev, e->oid), 0) << "walk went backwards";
    }
    prev = e->oid;
    cursor = e->oid;
    ++visited;
  }
  EXPECT_EQ(visited, reference.size());
}

TEST(BTreeMib, HeightStaysLogarithmic) {
  BTreeMib btree;
  for (std::uint32_t i = 0; i < 4000; ++i) {
    btree.Insert(Oid{1, 3, 6, i}, "v");
  }
  btree.CheckInvariants();
  // Order-8 tree of 4000 keys: height well under 6.
  EXPECT_LE(btree.Height(), 6);
  EXPECT_GE(btree.Height(), 3);
}

TEST(Mib, ComparisonCountsSeparateTheAlgorithms) {
  // The order-of-magnitude observation, at the data-structure level.
  constexpr std::size_t kEntries = 1000;
  LinearMib linear;
  BTreeMib btree;
  const std::vector<Oid> oids = SnmpAgent::PopulateStandardMib(&linear, kEntries);
  SnmpAgent::PopulateStandardMib(&btree, kEntries);
  linear.ResetComparisons();
  btree.ResetComparisons();

  Rng rng(9);
  constexpr int kLookups = 200;
  for (int i = 0; i < kLookups; ++i) {
    const Oid& probe = oids[rng.NextBelow(oids.size())];
    ASSERT_NE(linear.Get(probe), nullptr);
    ASSERT_NE(btree.Get(probe), nullptr);
  }
  const double linear_per = static_cast<double>(linear.comparisons()) / kLookups;
  const double btree_per = static_cast<double>(btree.comparisons()) / kLookups;
  EXPECT_GT(linear_per, 300.0);  // ~N/2
  EXPECT_LT(btree_per, 40.0);    // ~log2(N) within nodes
  EXPECT_GT(linear_per / btree_per, 10.0) << "expected an order of magnitude";
}

// The profTelemetry subtree: the obs registry published over the same
// MibStore the agent serves, rows in name-sorted order so GETNEXT walks
// are deterministic, and refreshable in place mid-run.
TEST(TelemetryMib, PublishesSnapshotRowsInSortedOrder) {
  obs::Snapshot snap;
  obs::MetricValue counter;
  counter.name = "decode.events";
  counter.kind = obs::MetricKind::kCounter;
  counter.count = 42;
  obs::MetricValue gauge;
  gauge.name = "parallel.queue_depth";
  gauge.kind = obs::MetricKind::kGauge;
  gauge.value = 2;
  gauge.peak = 9;
  obs::MetricValue hist;
  hist.name = "zz.decode.latency";
  hist.kind = obs::MetricKind::kHistogram;
  hist.buckets[0] = 50;  // <= 1us
  hist.buckets[1] = 40;  // <= 2us
  hist.buckets[2] = 10;  // <= 5us
  hist.count = 100;
  hist.sum_ns = 123456;
  hist.max_ns = 4200;
  snap.metrics = {counter, gauge, hist};  // already name-sorted

  for (const bool btree : {false, true}) {
    std::unique_ptr<MibStore> mib;
    if (btree) {
      mib = std::make_unique<BTreeMib>();
    } else {
      mib = std::make_unique<LinearMib>();
    }
    PopulateTelemetryMib(snap, mib.get());

    const Oid root = ProfTelemetryRoot();
    Oid count_oid = root;
    count_oid.insert(count_oid.end(), {1, 0});
    const MibEntry* count = mib->Get(count_oid);
    ASSERT_NE(count, nullptr);
    EXPECT_EQ(count->value, "3");

    // Row 1 = decode.events (sorted before parallel.queue_depth).
    auto cell = [&root, &mib](std::uint32_t row, std::uint32_t col) {
      Oid oid = root;
      oid.insert(oid.end(), {2, row, col, 0});
      const MibEntry* e = mib->Get(oid);
      return e == nullptr ? std::string("<absent>") : e->value;
    };
    EXPECT_EQ(cell(1, 1), "decode.events");
    EXPECT_EQ(cell(1, 2), "counter");
    EXPECT_EQ(cell(1, 3), "42");
    EXPECT_EQ(cell(1, 4), "0");
    EXPECT_EQ(cell(2, 1), "parallel.queue_depth");
    EXPECT_EQ(cell(2, 2), "gauge");
    EXPECT_EQ(cell(2, 3), "2");
    EXPECT_EQ(cell(2, 4), "9");
    EXPECT_EQ(cell(3, 1), "zz.decode.latency");
    EXPECT_EQ(cell(3, 2), "histogram");
    EXPECT_EQ(cell(3, 3), "100");
    EXPECT_EQ(cell(3, 4), "123456");

    // The percentile leaves (.5/.6/.7): ladder bucket upper bounds, the p99
    // clamped to the observed max so it never exaggerates past a real
    // sample. Counters and gauges publish 0 so the row shape is fixed.
    EXPECT_EQ(cell(3, 5), "1000");  // p50: rank 50 lands in the <=1us bucket
    EXPECT_EQ(cell(3, 6), "2000");  // p90: rank 90 lands in the <=2us bucket
    EXPECT_EQ(cell(3, 7), "4200");  // p99: <=5us bucket, clamped to max_ns
    EXPECT_EQ(cell(1, 5), "0");
    EXPECT_EQ(cell(2, 7), "0");

    // A GETNEXT walk from the root enumerates the whole subtree: the count
    // scalar plus 7 columns per row, in OID order.
    std::size_t visited = 0;
    Oid at = root;
    while (const MibEntry* e = mib->GetNext(at)) {
      if (CompareOid(e->oid, root) < 0) {
        break;
      }
      Oid prefix(e->oid.begin(),
                 e->oid.begin() + static_cast<std::ptrdiff_t>(
                                      std::min(root.size(), e->oid.size())));
      if (CompareOid(prefix, root) != 0) {
        break;  // walked past the subtree
      }
      ++visited;
      at = e->oid;
    }
    EXPECT_EQ(visited, 1u + 3u * 7u);
  }

  // Snapshot determinism: publishing the same snapshot twice yields two
  // byte-identical subtrees (walk order, OIDs and values all match).
  LinearMib a;
  LinearMib b;
  PopulateTelemetryMib(snap, &a);
  PopulateTelemetryMib(snap, &b);
  Oid at_a = ProfTelemetryRoot();
  Oid at_b = ProfTelemetryRoot();
  while (true) {
    const MibEntry* ea = a.GetNext(at_a);
    const MibEntry* eb = b.GetNext(at_b);
    ASSERT_EQ(ea == nullptr, eb == nullptr);
    if (ea == nullptr) {
      break;
    }
    EXPECT_EQ(CompareOid(ea->oid, eb->oid), 0);
    EXPECT_EQ(ea->value, eb->value);
    at_a = ea->oid;
    at_b = eb->oid;
  }
}

TEST(TelemetryMib, RefreshRepublishesTheLiveRegistry) {
  obs::SetEnabled(true);
  obs::ResetTelemetry();
  LinearMib mib;
  OBS_COUNT("snmp_test.polls", 1);
  RefreshTelemetryMib(&mib);

  const Oid root = ProfTelemetryRoot();
  // Find the snmp_test.polls row and remember its value OID.
  Oid value_oid;
  Oid at = root;
  while (const MibEntry* e = mib.GetNext(at)) {
    if (e->oid.size() == root.size() + 4 && e->value == "snmp_test.polls") {
      value_oid = e->oid;
      value_oid[root.size() + 2] = 3;  // name column -> value column
      break;
    }
    at = e->oid;
  }
  ASSERT_FALSE(value_oid.empty()) << "snmp_test.polls row not published";
  const MibEntry* v1 = mib.Get(value_oid);
  ASSERT_NE(v1, nullptr);
  EXPECT_EQ(v1->value, "1");

  // Mid-run poll: bump the live counter, refresh, same OID reads the new
  // value (Insert replaces in place).
  OBS_COUNT("snmp_test.polls", 4);
  RefreshTelemetryMib(&mib);
  const MibEntry* v2 = mib.Get(value_oid);
  ASSERT_NE(v2, nullptr);
  EXPECT_EQ(v2->value, "5");
}

TEST(TelemetryMib, PublishesKernelIpintrqDropsEndToEnd) {
  // The silent-packet-loss fix: packets shed by a full ipintrq land on a
  // telemetry gauge, which must surface as a profTelemetry leaf.
  obs::SetEnabled(true);
  obs::ResetTelemetry();
  Testbed tb;
  Kernel& k = tb.kernel();
  // ipintrq caps at 50 chains; flooded at driver IPL (so the soft interrupt
  // cannot drain mid-flood), the 7 extra are dropped and counted.
  const int s = k.spl().splimp();
  for (int i = 0; i < 57; ++i) {
    k.net().EtherInput(k.mbufs().FromBytes(PatternBytes(64), false));
  }
  k.spl().splx(s);
  ASSERT_EQ(k.net().ipintrq_drops(), 7u);

  LinearMib mib;
  RefreshTelemetryMib(&mib);
  const Oid root = ProfTelemetryRoot();
  Oid value_oid;
  Oid at = root;
  while (const MibEntry* e = mib.GetNext(at)) {
    if (e->oid.size() == root.size() + 4 && e->value == "kern.net.ipintrq_drops") {
      value_oid = e->oid;
      value_oid[root.size() + 2] = 3;  // name column -> value column
      break;
    }
    at = e->oid;
  }
  ASSERT_FALSE(value_oid.empty()) << "kern.net.ipintrq_drops row not published";
  const MibEntry* value = mib.Get(value_oid);
  ASSERT_NE(value, nullptr);
  EXPECT_EQ(value->value, "7");
}

TEST(SnmpAgent, ServesVerifiedRepliesEndToEnd) {
  Testbed tb;
  Kernel& k = tb.kernel();
  auto mib = std::make_unique<BTreeMib>();
  const std::vector<Oid> oids = SnmpAgent::PopulateStandardMib(mib.get(), 200);
  auto agent = std::make_shared<SnmpAgent>(k, mib.get());
  auto client =
      std::make_shared<SnmpClientHost>(tb.machine(), k.wire(), oids, /*seed=*/11);

  k.Spawn("snmpd", [agent](UserEnv& env) { agent->Serve(env); });
  tb.machine().events().ScheduleAt(Msec(20), [client] { client->Start(100); });
  k.Run(Sec(30));

  EXPECT_TRUE(client->done());
  EXPECT_EQ(client->received(), 100u);
  EXPECT_EQ(client->mismatches(), 0u);
  EXPECT_GE(agent->stats().replies, 100u);
  EXPECT_GT(client->MeanRtt(), 0u);
}

TEST(SnmpAgent, BTreeAgentAnswersFasterThanLinear) {
  auto run_with = [](MibStore* mib, const std::vector<Oid>& oids) {
    Testbed tb;
    Kernel& k = tb.kernel();
    auto agent = std::make_shared<SnmpAgent>(k, mib);
    auto client =
        std::make_shared<SnmpClientHost>(tb.machine(), k.wire(), oids, /*seed=*/5);
    k.Spawn("snmpd", [agent](UserEnv& env) { agent->Serve(env); });
    tb.machine().events().ScheduleAt(Msec(20), [client] { client->Start(60); });
    k.Run(Sec(60));
    EXPECT_EQ(client->mismatches(), 0u);
    EXPECT_EQ(client->received(), 60u);
    return client->MeanRtt();
  };
  LinearMib linear;
  BTreeMib btree;
  const std::vector<Oid> oids = SnmpAgent::PopulateStandardMib(&linear, 1000);
  SnmpAgent::PopulateStandardMib(&btree, 1000);
  const Nanoseconds linear_rtt = run_with(&linear, oids);
  const Nanoseconds btree_rtt = run_with(&btree, oids);
  EXPECT_LT(btree_rtt, linear_rtt / 2) << "B-tree should win decisively";
}

}  // namespace
}  // namespace hwprof
