// spl priority semantics, interrupt masking/pending delivery, clock ticks
// and callouts.

#include <gtest/gtest.h>

#include "src/kern/clock.h"
#include "src/kern/sched.h"
#include "src/kern/user_env.h"
#include "src/workloads/testbed.h"

namespace hwprof {
namespace {

TEST(Spl, RaiseNeverLowers) {
  Testbed tb;
  Kernel& k = tb.kernel();
  bool checked = false;
  k.Spawn("p", [&](UserEnv& env) {
    (void)env;
    const int s0 = k.spl().splhigh();
    EXPECT_EQ(static_cast<Ipl>(s0), Ipl::kNone);
    // A lower raise while at splhigh keeps splhigh.
    const int s1 = k.spl().splnet();
    EXPECT_EQ(static_cast<Ipl>(s1), Ipl::kHigh);
    EXPECT_EQ(k.spl().current(), Ipl::kHigh);
    k.spl().splx(s1);
    EXPECT_EQ(k.spl().current(), Ipl::kHigh);
    k.spl().splx(s0);
    EXPECT_EQ(k.spl().current(), Ipl::kNone);
    checked = true;
  });
  k.Run(Msec(50));
  EXPECT_TRUE(checked);
}

TEST(Spl, SplclockMasksTheClockUntilSplx) {
  Testbed tb;
  Kernel& k = tb.kernel();
  std::uint64_t ticks_during = 0;
  std::uint64_t ticks_after = 0;
  k.Spawn("blocker", [&](UserEnv& env) {
    (void)env;
    const int s = k.spl().splclock();
    // 100 ms at splclock: ~10 ticks are pended, none delivered.
    k.cpu().Use(Msec(100));
    ticks_during = k.clocksys().ticks();
    k.spl().splx(s);  // delivery happens here
    ticks_after = k.clocksys().ticks();
  });
  k.Run(Msec(300));
  EXPECT_EQ(ticks_during, 0u);
  EXPECT_GE(ticks_after, 1u);
  // The latch holds one pending tick (level-triggered), not a count.
  EXPECT_LE(ticks_after, 2u);
}

TEST(Spl, LowerPriorityWorkIsInterruptedByClock) {
  Testbed tb;
  Kernel& k = tb.kernel();
  std::uint64_t ticks_seen = 0;
  k.Spawn("netjob", [&](UserEnv& env) {
    (void)env;
    const int s = k.spl().splnet();  // below splclock: clock still fires
    k.cpu().Use(Msec(100));
    ticks_seen = k.clocksys().ticks();
    k.spl().splx(s);
  });
  k.Run(Msec(300));
  EXPECT_GE(ticks_seen, 9u);
}

TEST(Spl, PerProcessLevelRestoredAcrossSwitch) {
  Testbed tb;
  Kernel& k = tb.kernel();
  Ipl seen_by_b = Ipl::kHigh;
  bool a_resumed_at_bio = false;
  int chan = 0;
  k.Spawn("a", [&](UserEnv& env) {
    (void)env;
    const int s = k.spl().splbio();
    k.sched().Tsleep(&chan, "x", Msec(100));
    // Resumed: our level must still be splbio.
    a_resumed_at_bio = k.spl().current() == Ipl::kBio;
    k.spl().splx(s);
  });
  k.Spawn("b", [&](UserEnv& env) {
    env.Compute(Msec(5));
    // A sleeps at splbio, but that must not leak into us.
    seen_by_b = k.spl().current();
    k.sched().Wakeup(&chan);
  });
  k.Run(Sec(1));
  EXPECT_EQ(seen_by_b, Ipl::kNone);
  EXPECT_TRUE(a_resumed_at_bio);
}

TEST(Clock, TickRateIs100Hz) {
  Testbed tb;
  Kernel& k = tb.kernel();
  k.Run(Sec(2));
  EXPECT_GE(k.clocksys().ticks(), 195u);
  EXPECT_LE(k.clocksys().ticks(), 205u);
}

TEST(Clock, CalloutsFireInOrder) {
  Testbed tb;
  Kernel& k = tb.kernel();
  std::vector<int> order;
  k.Spawn("setter", [&](UserEnv& env) {
    (void)env;
    k.clocksys().Timeout([&] { order.push_back(3); }, Msec(300));
    k.clocksys().Timeout([&] { order.push_back(1); }, Msec(100));
    k.clocksys().Timeout([&] { order.push_back(2); }, Msec(200));
  });
  k.Run(Sec(1));
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Clock, UntimeoutCancels) {
  Testbed tb;
  Kernel& k = tb.kernel();
  int fired = 0;
  k.Spawn("setter", [&](UserEnv& env) {
    (void)env;
    const auto id = k.clocksys().Timeout([&] { ++fired; }, Msec(100));
    EXPECT_TRUE(k.clocksys().Untimeout(id));
    EXPECT_FALSE(k.clocksys().Untimeout(id));
  });
  k.Run(Sec(1));
  EXPECT_EQ(fired, 0);
}

TEST(Clock, CalloutDelayRoundsUpToTicks) {
  Testbed tb;
  Kernel& k = tb.kernel();
  Nanoseconds fired_at = 0;
  Nanoseconds set_at = 0;
  k.Spawn("setter", [&](UserEnv& env) {
    (void)env;
    set_at = k.Now();
    k.clocksys().Timeout([&] { fired_at = k.Now(); }, Usec(1));
  });
  k.Run(Sec(1));
  ASSERT_NE(fired_at, 0u);
  const Nanoseconds delay = fired_at - set_at;
  EXPECT_GE(delay, Usec(1));
  EXPECT_LE(delay, 2 * kTickInterval + Msec(1));
}

TEST(Clock, HardclockCostMatchesThePaper) {
  // "the regular clock tick interrupt took on average 94 microseconds".
  Testbed tb;
  Kernel& k = tb.kernel();
  const Nanoseconds busy0 = k.cpu().busy_ns();
  k.Run(Sec(5));
  const std::uint64_t ticks = k.clocksys().ticks();
  ASSERT_GT(ticks, 0u);
  const double per_tick_us =
      static_cast<double>(k.cpu().busy_ns() - busy0) / 1000.0 / static_cast<double>(ticks);
  EXPECT_GT(per_tick_us, 70.0);
  EXPECT_LT(per_tick_us, 120.0);
}

TEST(Clock, StopHaltsTicking) {
  Testbed tb;
  Kernel& k = tb.kernel();
  k.Run(Msec(100));
  k.clocksys().Stop();
  const std::uint64_t ticks = k.clocksys().ticks();
  k.Run(Msec(300));
  EXPECT_EQ(k.clocksys().ticks(), ticks);
}

}  // namespace
}  // namespace hwprof
