// Double-buffered (streaming) capture: bank switching, the drain-port
// register file, drop accounting, the kernel-side drain routines, and the
// long-run acceptance property — a capture far beyond one RAM's depth whose
// incremental decode matches the one-shot decode byte for byte.

#include <gtest/gtest.h>

#include <fstream>

#include "src/analysis/decoder.h"
#include "src/analysis/summary.h"
#include "src/instr/readout.h"
#include "src/profhw/profiler.h"
#include "src/profhw/smart_socket.h"
#include "src/workloads/testbed.h"
#include "src/workloads/workloads.h"

namespace hwprof {
namespace {

ProfilerConfig SmallDoubleBuffer(std::size_t depth) {
  ProfilerConfig config;
  config.ram_depth = depth;
  config.double_buffer = true;
  return config;
}

// Reads one drain-port byte straight off the board (the bus would deliver
// exactly this byte on a socket read of the port address).
std::uint8_t PortByte(Profiler& p, std::uint16_t port) {
  std::uint8_t data = 0xFF;
  p.ProvideEpromData(port, &data);
  return data;
}

std::uint32_t PortU32(Profiler& p, std::uint16_t port) {
  std::uint32_t value = 0;
  for (std::uint32_t i = 0; i < 4; ++i) {
    value |= static_cast<std::uint32_t>(PortByte(p, static_cast<std::uint16_t>(port + i)))
             << (8 * i);
  }
  return value;
}

TEST(DoubleBuffer, FillSealsAndSwapsWithoutLosingEvents) {
  Profiler p(SmallDoubleBuffer(4));
  p.Arm();
  for (std::uint16_t i = 0; i < 4; ++i) {
    p.OnEpromRead(static_cast<std::uint16_t>(100 + i), (i + 1) * kMicrosecond);
  }
  // The bank is full but not sealed yet: the swap happens on the next store.
  EXPECT_FALSE(p.standby_ready());
  EXPECT_EQ(p.events_captured(), 4u);

  p.OnEpromRead(110, 10 * kMicrosecond);
  EXPECT_TRUE(p.standby_ready());
  EXPECT_EQ(p.bank_switches(), 1u);
  EXPECT_EQ(p.events_captured(), 5u);
  EXPECT_EQ(p.total_captured(), 5u);
  EXPECT_EQ(p.dropped_events(), 0u);
  EXPECT_FALSE(p.led_overflow());
}

TEST(DoubleBuffer, DrainPortsServeTheSealedBank) {
  Profiler p(SmallDoubleBuffer(3));
  p.Arm();
  p.OnEpromRead(100, 1 * kMicrosecond);
  p.OnEpromRead(101, 2 * kMicrosecond);
  p.OnEpromRead(100, 3 * kMicrosecond);
  p.OnEpromRead(101, 4 * kMicrosecond);  // forces the swap

  EXPECT_EQ(PortByte(p, kDrainStatusPort) & kDrainStatusReady, kDrainStatusReady);
  EXPECT_EQ(PortByte(p, kDrainStatusPort) & kDrainStatusArmed, kDrainStatusArmed);
  EXPECT_EQ(PortByte(p, kDrainStatusPort) & kDrainStatusDropped, 0);
  EXPECT_EQ(PortU32(p, kDrainCountPort), 3u);
  EXPECT_EQ(PortU32(p, kDrainDropPort), 0u);

  // Auto-incrementing data port: 3 tags (2 bytes each), then 3 timestamps
  // (3 bytes each), all little-endian.
  const std::uint16_t expected_tags[3] = {100, 101, 100};
  for (int i = 0; i < 3; ++i) {
    const std::uint16_t lo = PortByte(p, kDrainDataPort);
    const std::uint16_t hi = PortByte(p, kDrainDataPort);
    EXPECT_EQ(static_cast<std::uint16_t>(lo | (hi << 8)), expected_tags[i]);
  }
  for (int i = 0; i < 3; ++i) {
    std::uint32_t ts = 0;
    for (int b = 0; b < 3; ++b) {
      ts |= static_cast<std::uint32_t>(PortByte(p, kDrainDataPort)) << (8 * b);
    }
    EXPECT_EQ(ts, static_cast<std::uint32_t>(i + 1));
  }

  // Release frees the bank for the next swap.
  EXPECT_EQ(PortByte(p, kDrainReleasePort), kDrainAck);
  EXPECT_FALSE(p.standby_ready());
  EXPECT_EQ(p.events_captured(), 1u);  // the event that forced the swap
}

TEST(DoubleBuffer, TriggerWindowReadsAreCapturedDrainWindowReadsAreNot) {
  Profiler p(SmallDoubleBuffer(8));
  p.Arm();
  p.OnEpromRead(100, 1 * kMicrosecond);
  p.OnEpromRead(kDrainStatusPort, 2 * kMicrosecond);  // A15 high: not an event
  p.OnEpromRead(kDrainDataPort, 3 * kMicrosecond);
  p.OnEpromRead(101, 4 * kMicrosecond);
  EXPECT_EQ(p.total_captured(), 2u);
}

TEST(DoubleBuffer, DropsAreCountedAndStampedOnTheNextBank) {
  Profiler p(SmallDoubleBuffer(2));
  p.Arm();
  p.OnEpromRead(100, 1 * kMicrosecond);
  p.OnEpromRead(101, 2 * kMicrosecond);  // bank 0 full
  p.OnEpromRead(102, 3 * kMicrosecond);  // swap; bank 1: [102]
  p.OnEpromRead(103, 4 * kMicrosecond);  // bank 1 full
  p.OnEpromRead(104, 5 * kMicrosecond);  // both banks full: dropped
  p.OnEpromRead(105, 6 * kMicrosecond);  // dropped
  EXPECT_EQ(p.dropped_events(), 2u);
  EXPECT_EQ(p.pending_drops(), 2u);
  EXPECT_TRUE(p.led_overflow());
  EXPECT_EQ(PortByte(p, kDrainStatusPort) & kDrainStatusDropped, kDrainStatusDropped);

  // Bank 0 drains with no drops before its first event.
  EXPECT_EQ(PortU32(p, kDrainDropPort), 0u);
  EXPECT_EQ(PortByte(p, kDrainReleasePort), kDrainAck);

  // The next stored event swaps bank 1 out; the 2 drops that preceded it
  // are stamped into the new bank's header.
  p.OnEpromRead(106, 7 * kMicrosecond);
  EXPECT_EQ(p.pending_drops(), 0u);
  ASSERT_TRUE(p.standby_ready());
  EXPECT_EQ(PortU32(p, kDrainCountPort), 2u);  // bank 1: [102, 103]
  EXPECT_EQ(PortU32(p, kDrainDropPort), 0u);   // nothing dropped before 102
  EXPECT_EQ(PortByte(p, kDrainReleasePort), kDrainAck);

  // Host-commanded seal of the active bank: [106] with 2 drops before it.
  EXPECT_EQ(PortByte(p, kDrainSealPort), kDrainAck);
  ASSERT_TRUE(p.standby_ready());
  EXPECT_EQ(PortU32(p, kDrainCountPort), 1u);
  EXPECT_EQ(PortU32(p, kDrainDropPort), 2u);
}

TEST(DoubleBuffer, UploadConcatenatesSealedThenActive) {
  Profiler p(SmallDoubleBuffer(2));
  p.Arm();
  for (std::uint16_t i = 0; i < 3; ++i) {
    p.OnEpromRead(static_cast<std::uint16_t>(100 + i), (i + 1) * kMicrosecond);
  }
  const RawTrace up = p.Upload();
  ASSERT_EQ(up.events.size(), 3u);
  EXPECT_EQ(up.events[0].tag, 100u);  // sealed bank first: its events are older
  EXPECT_EQ(up.events[1].tag, 101u);
  EXPECT_EQ(up.events[2].tag, 102u);
  EXPECT_FALSE(up.overflowed);
}

// --- Kernel-side drain on the full rig ---------------------------------------

TestbedConfig StreamingRig(std::size_t depth = kDefaultEventRamDepth) {
  TestbedConfig config;
  config.profiler = SmallDoubleBuffer(depth);
  return config;
}

TEST(StreamingDrain, DrainRemainingMatchesUpload) {
  Testbed tb(StreamingRig(256));
  tb.Arm();
  RunNetworkReceive(tb, Sec(1), 8 * 1024, /*verify_payload=*/false);
  tb.profiler().Disarm();

  // Upload is non-destructive, so it is the ground truth for the drain.
  const RawTrace up = tb.profiler().Upload();
  ASSERT_GT(up.events.size(), 256u);  // several bank switches happened

  std::vector<TraceChunk> chunks;
  DrainRemaining(tb.machine(), tb.instr(), tb.profiler(), &chunks);
  std::vector<RawEvent> flat;
  for (const TraceChunk& c : chunks) {
    flat.insert(flat.end(), c.events.begin(), c.events.end());
  }
  // The mid-run banks were never drained here, so only the still-resident
  // events (sealed + active) can come out — exactly Upload's view.
  EXPECT_EQ(flat, up.events);
  EXPECT_EQ(tb.profiler().events_captured(), 0u);  // drained banks are released
}

TEST(StreamingDrain, PeriodicDrainKeepsUpWithTheSaturatingReceive) {
  Testbed tb(StreamingRig());
  tb.Arm();
  const StreamingRunResult r =
      RunStreamingNetworkReceive(tb, Sec(8), 512 * 1024, 100 * kMillisecond);
  EXPECT_GT(r.net.bytes_received, 0u);
  EXPECT_GT(r.drains, 0u);
  // A 100 ms drain period beats the ~0.4 s bank fill time: nothing dropped.
  EXPECT_EQ(r.events_dropped, 0u);
  EXPECT_EQ(tb.profiler().dropped_events(), 0u);
  EXPECT_EQ(r.events_drained, tb.profiler().total_captured());
  EXPECT_GT(r.events_drained, tb.profiler().capacity());
}

// The tentpole acceptance property: a capture an order of magnitude past the
// 16384-event RAM, streamed out bank by bank, whose incremental decode is
// byte-identical (Figure 3 report and all counters) to decoding the
// concatenated events in one shot.
TEST(StreamingDrain, LongRunIncrementalDecodeMatchesOneShot) {
  Testbed tb(StreamingRig());
  tb.Arm();
  const StreamingRunResult r =
      RunStreamingNetworkReceive(tb, Sec(30), 2500 * 1024, 100 * kMillisecond);
  ASSERT_EQ(r.events_dropped, 0u);
  ASSERT_GE(r.events_drained, 10u * kDefaultEventRamDepth);
  ASSERT_GT(tb.profiler().bank_switches(), 10u);

  RawTrace flat;
  flat.timer_bits = tb.profiler().timer().bits();
  flat.timer_clock_hz = tb.profiler().timer().clock_hz();
  for (const TraceChunk& c : r.chunks) {
    flat.events.insert(flat.events.end(), c.events.begin(), c.events.end());
  }
  const DecodedTrace batch = Decoder::Decode(flat, tb.tags());

  StreamingDecoder dec(tb.tags());
  for (const TraceChunk& c : r.chunks) {
    dec.FeedChunk(c);
  }
  const DecodedTrace inc = dec.Finish();

  EXPECT_EQ(inc.event_count, batch.event_count);
  EXPECT_EQ(inc.unknown_tags, batch.unknown_tags);
  EXPECT_EQ(inc.orphan_exits, batch.orphan_exits);
  EXPECT_EQ(inc.unclosed_entries, batch.unclosed_entries);
  EXPECT_EQ(inc.idle_time, batch.idle_time);
  EXPECT_EQ(inc.start_time, batch.start_time);
  EXPECT_EQ(inc.end_time, batch.end_time);
  EXPECT_EQ(Summary(inc).Format(0), Summary(batch).Format(0));

  // The drain routine profiled itself into the capture.
  const FuncStats* drain = inc.Stats("profdrain");
  ASSERT_NE(drain, nullptr);
  EXPECT_GE(drain->calls, r.drains);
}

TEST(StreamingDrain, SlowDrainDropsAreFullyAccounted) {
  Testbed tb(StreamingRig());
  tb.Arm();
  // Banks fill roughly every 0.4 s; a 2 s drain period must lose the race.
  const StreamingRunResult r =
      RunStreamingNetworkReceive(tb, Sec(10), 2500 * 1024, 2 * kSecond);
  ASSERT_GT(r.events_dropped, 0u);
  EXPECT_TRUE(tb.profiler().led_overflow());
  // Every event the board ever stored came out, and every drop is in some
  // chunk header: stored + dropped = everything the triggers offered.
  EXPECT_EQ(r.events_drained, tb.profiler().total_captured());
  EXPECT_EQ(r.events_dropped, tb.profiler().dropped_events());

  // The incremental decoder surfaces the loss explicitly.
  StreamingDecoder dec(tb.tags());
  for (const TraceChunk& c : r.chunks) {
    dec.FeedChunk(c);
  }
  const DecodedTrace inc = dec.Finish();
  EXPECT_EQ(inc.dropped_events, r.events_dropped);
  EXPECT_GT(inc.capture_gaps, 0u);
  EXPECT_EQ(inc.event_count, r.events_drained);
}

TEST(StreamingDrain, StreamFileRoundTripsChunks) {
  Testbed tb(StreamingRig(1024));
  tb.Arm();
  const std::string path = ::testing::TempDir() + "/capture.hwstream";
  const StreamingRunResult r =
      RunStreamingNetworkReceive(tb, Sec(1), 32 * 1024, 50 * kMillisecond, path);
  ASSERT_TRUE(r.io_ok);
  ASSERT_FALSE(r.chunks.empty());

  StreamCapture cap;
  ASSERT_TRUE(LoadStream(path, &cap));
  EXPECT_EQ(cap.timer_bits, tb.profiler().timer().bits());
  EXPECT_EQ(cap.timer_clock_hz, tb.profiler().timer().clock_hz());
  EXPECT_FALSE(cap.truncated_tail);
  EXPECT_EQ(cap.chunks, r.chunks);
}

}  // namespace
}  // namespace hwprof
