// The TCP transmit path: active open, window-limited send, go-back-N
// retransmission under injected loss, FIN delivery — all byte-verified by
// the remote ReceiverHost.

#include <gtest/gtest.h>

#include <memory>

#include "src/analysis/decoder.h"
#include "src/kern/net.h"
#include "src/kern/net_hosts.h"
#include "src/kern/user_env.h"
#include "src/workloads/testbed.h"
#include "src/workloads/workloads.h"

namespace hwprof {
namespace {

TEST(TcpSend, ConnectCompletesHandshake) {
  Testbed tb;
  Kernel& k = tb.kernel();
  auto receiver = std::make_shared<ReceiverHost>(tb.machine(), k.wire(), 7000);
  bool connected = false;
  k.Spawn("client", [&](UserEnv& env) {
    const int fd = env.Socket(true);
    connected = env.Connect(fd, kSenderIpAddr, 7000);
  });
  k.Run(Sec(5));
  EXPECT_TRUE(connected);
  EXPECT_TRUE(receiver->connected());
}

TEST(TcpSend, ConnectToNobodyTimesOut) {
  Testbed tb;
  Kernel& k = tb.kernel();
  bool connected = true;
  Nanoseconds took = 0;
  k.Spawn("client", [&](UserEnv& env) {
    const int fd = env.Socket(true);
    const Nanoseconds t0 = k.Now();
    connected = env.Connect(fd, kSenderIpAddr, 7999);  // no listener out there
    took = k.Now() - t0;
  });
  k.Run(Sec(30));
  EXPECT_FALSE(connected);
  EXPECT_GE(took, Sec(4));  // 3 SYN tries at ~2 s apiece
}

class TcpSendSizeTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TcpSendSizeTest, StreamArrivesIntact) {
  Testbed tb;
  Kernel& k = tb.kernel();
  auto receiver = std::make_shared<ReceiverHost>(tb.machine(), k.wire(), 7000);
  const Bytes payload = PatternBytes(GetParam(), 3);
  long sent = -1;
  k.Spawn("client", [&](UserEnv& env) {
    const int fd = env.Socket(true);
    ASSERT_TRUE(env.Connect(fd, kSenderIpAddr, 7000));
    sent = env.Send(fd, payload);
    env.Shutdown(fd);
  });
  k.Run(Sec(30));
  EXPECT_EQ(sent, static_cast<long>(GetParam()));
  EXPECT_EQ(receiver->received(), payload);
  EXPECT_TRUE(receiver->saw_fin());
}

INSTANTIATE_TEST_SUITE_P(Sizes, TcpSendSizeTest,
                         ::testing::Values(1u, 1460u, 1461u, 40000u, 200000u));

TEST(TcpSend, RecoversFromInjectedLoss) {
  Testbed tb;
  Kernel& k = tb.kernel();
  auto receiver = std::make_shared<ReceiverHost>(tb.machine(), k.wire(), 7000);
  receiver->SetDropEveryN(7);  // lose every 7th data segment
  const Bytes payload = PatternBytes(120000, 9);
  k.Spawn("client", [&](UserEnv& env) {
    const int fd = env.Socket(true);
    ASSERT_TRUE(env.Connect(fd, kSenderIpAddr, 7000));
    env.Send(fd, payload);
    env.Shutdown(fd);
  });
  k.Run(Sec(60));
  EXPECT_GT(receiver->segments_dropped(), 5u);
  EXPECT_EQ(receiver->received(), payload) << "go-back-N failed to repair the stream";
}

TEST(TcpSend, SmallReceiverWindowThrottles) {
  Testbed tb;
  Kernel& k = tb.kernel();
  auto receiver = std::make_shared<ReceiverHost>(tb.machine(), k.wire(), 7000);
  receiver->SetWindow(2048);  // barely more than one segment
  const Bytes payload = PatternBytes(30000, 1);
  k.Spawn("client", [&](UserEnv& env) {
    const int fd = env.Socket(true);
    ASSERT_TRUE(env.Connect(fd, kSenderIpAddr, 7000));
    env.Send(fd, payload);
    env.Shutdown(fd);
  });
  k.Run(Sec(60));
  EXPECT_EQ(receiver->received(), payload);
}

TEST(TcpSend, ProfileShowsTheTransmitPath) {
  // The send side burns its CPU in in_cksum + driver copy, mirroring the
  // receive side — the paper's symmetric conclusion about slow controllers.
  Testbed tb;
  Kernel& k = tb.kernel();
  auto receiver = std::make_shared<ReceiverHost>(tb.machine(), k.wire(), 7000);
  tb.Arm();
  k.Spawn("client", [&](UserEnv& env) {
    const int fd = env.Socket(true);
    ASSERT_TRUE(env.Connect(fd, kSenderIpAddr, 7000));
    env.Send(fd, PatternBytes(128 * 1024, 2));
    env.Shutdown(fd);
  });
  k.Run(Sec(30));
  DecodedTrace d = Decoder::Decode(tb.StopAndUpload(), tb.tags());
  EXPECT_EQ(d.orphan_exits, 0u);
  const FuncStats* tcp_out = d.Stats("tcp_output");
  const FuncStats* cksum = d.Stats("in_cksum");
  const FuncStats* bcopy = d.Stats("bcopy");
  ASSERT_NE(tcp_out, nullptr);
  ASSERT_NE(cksum, nullptr);
  ASSERT_NE(bcopy, nullptr);
  EXPECT_GE(tcp_out->calls, 80u);  // ~90 data segments
  // Outbound frames pay the same ISA copy (westart -> bcopy).
  EXPECT_GT(ToWholeUsec(bcopy->max_net), 900u);
  // Checksum work dominates alongside the copies, as on receive.
  EXPECT_GT(cksum->net, d.RunTime() / 5);
}

}  // namespace
}  // namespace hwprof
