// Call-graph analysis and the hwprof_analyze CLI entry point.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "src/analysis/callgraph.h"
#include "src/analysis/decoder.h"
#include "src/profhw/smart_socket.h"
#include "src/workloads/testbed.h"
#include "src/workloads/workloads.h"
#include "tools/analyze_main.h"
#include "tools/capture_main.h"

namespace hwprof {
namespace {

// --- CallGraph ----------------------------------------------------------------

const TagFile& GraphNames() {
  static const TagFile* names = [] {
    auto* file = new TagFile();
    HWPROF_CHECK(TagFile::Parse("a/100\nb/102\nc/104\n", file));
    return file;
  }();
  return *names;
}

TEST(CallGraph, EdgesReflectNesting) {
  RawTrace raw;
  // a{ b{ c{} } b{} }  and a top-level c{}.
  raw.events = {{100, 0},  {102, 10}, {104, 20}, {105, 30}, {103, 40},
                {102, 50}, {103, 60}, {101, 70}, {104, 80}, {105, 90}};
  DecodedTrace d = Decoder::Decode(raw, GraphNames());
  CallGraph graph(d);

  const CallEdge* ab = graph.Edge("a", "b");
  ASSERT_NE(ab, nullptr);
  EXPECT_EQ(ab->calls, 2u);
  EXPECT_EQ(ToWholeUsec(ab->callee_elapsed), 40u);  // 30 + 10

  const CallEdge* bc = graph.Edge("b", "c");
  ASSERT_NE(bc, nullptr);
  EXPECT_EQ(bc->calls, 1u);

  const CallEdge* top_a = graph.Edge(kSpontaneous, "a");
  ASSERT_NE(top_a, nullptr);
  EXPECT_EQ(top_a->calls, 1u);
  const CallEdge* top_c = graph.Edge(kSpontaneous, "c");
  ASSERT_NE(top_c, nullptr);

  EXPECT_EQ(graph.Edge("a", "c"), nullptr);  // only nested via b
}

TEST(CallGraph, CallersAndCalleesSorted) {
  RawTrace raw;
  raw.events = {{100, 0}, {104, 10}, {105, 100}, {101, 110},   // a -> c (90us)
                {102, 120}, {104, 130}, {105, 140}, {103, 150}};  // b -> c (10us)
  DecodedTrace d = Decoder::Decode(raw, GraphNames());
  CallGraph graph(d);
  const auto callers = graph.CallersOf("c");
  ASSERT_EQ(callers.size(), 2u);
  EXPECT_EQ(callers[0]->caller, "a");  // heavier edge first
  EXPECT_EQ(callers[1]->caller, "b");
  EXPECT_EQ(graph.CalleesOf("a").size(), 1u);
}

TEST(CallGraph, RealWorkloadGraphIsSane) {
  Testbed tb;
  tb.Arm();
  RunNetworkReceive(tb, Sec(2), 64 * 1024, false);
  DecodedTrace d = Decoder::Decode(tb.StopAndUpload(), tb.tags());
  CallGraph graph(d);
  // The driver copy is called from weget, never spontaneously.
  const auto bcopy_callers = graph.CallersOf("bcopy");
  ASSERT_FALSE(bcopy_callers.empty());
  bool from_weget = false;
  for (const CallEdge* edge : bcopy_callers) {
    EXPECT_NE(edge->caller, kSpontaneous);
    from_weget |= edge->caller == "weget";
  }
  EXPECT_TRUE(from_weget);
  // tcp_input is reached from ipintr.
  ASSERT_NE(graph.Edge("ipintr", "tcp_input"), nullptr);
  const std::string text = graph.Format(d, 8);
  EXPECT_NE(text.find("bcopy"), std::string::npos);
  EXPECT_NE(text.find("<-"), std::string::npos);
  EXPECT_NE(text.find("->"), std::string::npos);
}

// --- hwprof_analyze CLI ----------------------------------------------------------

struct CliFiles {
  std::string capture;
  std::string names;
};

CliFiles WriteSessionFiles() {
  Testbed tb;
  tb.Arm();
  RunNetworkReceive(tb, Sec(1), 32 * 1024, false);
  CliFiles files;
  files.capture = ::testing::TempDir() + "/cli.hwprof";
  files.names = ::testing::TempDir() + "/cli.names";
  HWPROF_CHECK(SaveCapture(tb.StopAndUpload(), files.capture));
  std::ofstream names_out(files.names);
  names_out << tb.tags().Format();
  return files;
}

int RunCli(std::initializer_list<const char*> args, std::string* error) {
  std::vector<const char*> argv{"hwprof_analyze"};
  argv.insert(argv.end(), args.begin(), args.end());
  return AnalyzeMain(static_cast<int>(argv.size()), argv.data(), error);
}

TEST(AnalyzeCli, DefaultSummary) {
  const CliFiles files = WriteSessionFiles();
  std::string error;
  EXPECT_EQ(RunCli({files.capture.c_str(), files.names.c_str()}, &error), 0) << error;
}

TEST(AnalyzeCli, AllReportsRun) {
  const CliFiles files = WriteSessionFiles();
  std::string error;
  EXPECT_EQ(RunCli({files.capture.c_str(), files.names.c_str(), "--summary", "10", "--trace",
                    "40", "--callgraph", "5", "--histogram", "bcopy", "--spl", "--processes"},
                   &error),
            0)
      << error;
}

TEST(AnalyzeCli, ErrorsAreReported) {
  std::string error;
  EXPECT_NE(RunCli({}, &error), 0);
  EXPECT_FALSE(error.empty());
  error.clear();
  EXPECT_NE(RunCli({"/nonexistent.hwprof", "/nonexistent.names"}, &error), 0);
  EXPECT_NE(error.find("cannot load"), std::string::npos);

  const CliFiles files = WriteSessionFiles();
  error.clear();
  EXPECT_NE(RunCli({files.capture.c_str(), files.names.c_str(), "--bogus"}, &error), 0);
  EXPECT_NE(error.find("unknown option"), std::string::npos);
}

TEST(AnalyzeCli, FollowReadsAChunkedStreamFile) {
  // Hand-build a stream file the way the streaming workload writes one:
  // header plus drained banks, with drops stamped on the second chunk.
  const std::string stream = ::testing::TempDir() + "/cli.hwstream";
  const std::string names_path = ::testing::TempDir() + "/cli_follow.names";
  {
    std::ofstream names_out(names_path);
    names_out << "a/100\nb/102\n";
  }
  ASSERT_TRUE(SaveStreamHeader(stream, 24, 1'000'000));
  TraceChunk first;
  first.events = {{100, 10}, {102, 20}, {103, 60}};
  TraceChunk second;
  second.events = {{101, 90}};
  second.dropped_before = 4;
  ASSERT_TRUE(AppendStreamChunk(stream, first));
  ASSERT_TRUE(AppendStreamChunk(stream, second));

  std::string error;
  EXPECT_EQ(RunCli({stream.c_str(), names_path.c_str(), "--follow", "--summary", "5"},
                   &error),
            0)
      << error;
  // --follow rejects batch-only report options.
  EXPECT_NE(RunCli({stream.c_str(), names_path.c_str(), "--follow", "--trace", "5"},
                   &error),
            0);
  EXPECT_NE(error.find("not available with --follow"), std::string::npos);
  // And a missing stream file is a load error, not a crash.
  EXPECT_NE(RunCli({"/nonexistent.hwstream", names_path.c_str(), "--follow"}, &error), 0);
  EXPECT_NE(error.find("cannot load stream"), std::string::npos);
}

TEST(AnalyzeCli, JsonReportCarriesTheAnomalyCounters) {
  const CliFiles files = WriteSessionFiles();
  std::string error;
  ::testing::internal::CaptureStdout();
  const int rc = RunCli({files.capture.c_str(), files.names.c_str(), "--json"}, &error);
  const std::string out = ::testing::internal::GetCapturedStdout();
  EXPECT_EQ(rc, 0) << error;
  EXPECT_NE(out.find("\"anomalies\": {"), std::string::npos);
  EXPECT_NE(out.find("\"corrupt_words\": 0"), std::string::npos);
  EXPECT_NE(out.find("\"wrap_ambiguous_gaps\": 0"), std::string::npos);
  EXPECT_NE(out.find("\"functions\": ["), std::string::npos);
  EXPECT_NE(out.find("\"pct_real\":"), std::string::npos);

  // Serial and parallel decodes emit byte-identical JSON.
  ::testing::internal::CaptureStdout();
  EXPECT_EQ(RunCli({files.capture.c_str(), files.names.c_str(), "--json", "--jobs", "8"},
                   &error),
            0)
      << error;
  EXPECT_EQ(::testing::internal::GetCapturedStdout(), out);
}

TEST(AnalyzeCli, ProgressHeartbeatKeepsJsonStdoutMachineClean) {
  // `--json --progress | jq` must keep parsing: the heartbeat goes to
  // stderr, so stdout is byte-identical with and without --progress.
  const CliFiles files = WriteSessionFiles();
  std::string error;
  ::testing::internal::CaptureStdout();
  const int plain_rc = RunCli({files.capture.c_str(), files.names.c_str(), "--json"}, &error);
  const std::string plain = ::testing::internal::GetCapturedStdout();
  ASSERT_EQ(plain_rc, 0) << error;

  ::testing::internal::CaptureStdout();
  ::testing::internal::CaptureStderr();
  const int rc = RunCli({files.capture.c_str(), files.names.c_str(), "--json", "--progress"},
                        &error);
  const std::string out = ::testing::internal::GetCapturedStdout();
  const std::string err = ::testing::internal::GetCapturedStderr();
  ASSERT_EQ(rc, 0) << error;
  EXPECT_EQ(out, plain) << "--progress leaked into stdout";
  EXPECT_EQ(err.rfind("progress: ", 0), 0u) << err.substr(0, 80);
  EXPECT_NE(err.find("events"), std::string::npos);

  // Same contract for --stats-json.
  ::testing::internal::CaptureStdout();
  ::testing::internal::CaptureStderr();
  ASSERT_EQ(RunCli({files.capture.c_str(), files.names.c_str(), "--stats-json", "--progress"},
                   &error),
            0)
      << error;
  const std::string stats_out = ::testing::internal::GetCapturedStdout();
  ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(stats_out.find("progress:"), std::string::npos);
}

TEST(AnalyzeCli, MalformedCaptureFailsWithLineDiagnostics) {
  const std::string capture = ::testing::TempDir() + "/cli_bad.hwprof";
  const std::string names_path = ::testing::TempDir() + "/cli_bad.names";
  {
    std::ofstream out(capture);
    out << "hwprof-raw v1 24 1000000 0\n100 10\ngarbage here\n101 20\n";
    std::ofstream names_out(names_path);
    names_out << "a/100\n";
  }
  std::string error;
  EXPECT_NE(RunCli({capture.c_str(), names_path.c_str(), "--summary", "5"}, &error), 0);
  EXPECT_NE(error.find("cannot load capture"), std::string::npos);
  EXPECT_NE(error.find(capture + ":3:"), std::string::npos) << error;
}

TEST(AnalyzeCli, SalvageRecoversACorruptCaptureAndReportsAnomalies) {
  const std::string capture = ::testing::TempDir() + "/cli_salvage.hwprof";
  const std::string names_path = ::testing::TempDir() + "/cli_salvage.names";
  {
    std::ofstream out(capture);
    out << "hwprof-raw v1 24 1000000 0\n100 10\ngarbage here\n101 20\n";
    std::ofstream names_out(names_path);
    names_out << "a/100\n";
  }
  std::string error;
  ::testing::internal::CaptureStdout();
  const int rc = RunCli(
      {capture.c_str(), names_path.c_str(), "--salvage", "--summary", "5"}, &error);
  const std::string out = ::testing::internal::GetCapturedStdout();
  EXPECT_EQ(rc, 0) << error;
  EXPECT_NE(out.find("(salvaged)"), std::string::npos) << out;
  EXPECT_NE(out.find("Capture anomalies (salvaged):"), std::string::npos) << out;
  EXPECT_NE(out.find("corrupt words"), std::string::npos) << out;
}

TEST(AnalyzeCli, FollowToleratesAStreamTruncatedMidRecord) {
  // A writer died mid-record: the chunk header promises two events but the
  // second line was torn by the crash. --follow must decode what made it to
  // disk and flag the truncated tail — never crash or spin.
  const std::string stream = ::testing::TempDir() + "/cli_torn.hwstream";
  const std::string names_path = ::testing::TempDir() + "/cli_torn.names";
  {
    std::ofstream names_out(names_path);
    names_out << "a/100\nb/102\n";
  }
  ASSERT_TRUE(SaveStreamHeader(stream, 24, 1'000'000));
  TraceChunk first;
  first.events = {{100, 10}, {102, 20}, {103, 60}, {101, 90}};
  ASSERT_TRUE(AppendStreamChunk(stream, first));
  {
    std::ofstream out(stream, std::ios::app);
    out << "chunk 2 0\n100 120\n10";  // torn: second event never finished
  }
  std::string error;
  ::testing::internal::CaptureStdout();
  const int rc = RunCli({stream.c_str(), names_path.c_str(), "--follow", "--summary", "5"},
                        &error);
  const std::string out = ::testing::internal::GetCapturedStdout();
  EXPECT_EQ(rc, 0) << error;
  EXPECT_NE(out.find("(truncated tail)"), std::string::npos) << out;
}

TEST(AnalyzeCli, FollowReportsMidStreamCorruptionUnlessSalvaging) {
  const std::string stream = ::testing::TempDir() + "/cli_corrupt.hwstream";
  const std::string names_path = ::testing::TempDir() + "/cli_corrupt.names";
  {
    std::ofstream names_out(names_path);
    names_out << "a/100\n";
  }
  ASSERT_TRUE(SaveStreamHeader(stream, 24, 1'000'000));
  TraceChunk first;
  first.events = {{100, 10}, {101, 50}};
  ASSERT_TRUE(AppendStreamChunk(stream, first));
  {
    std::ofstream out(stream, std::ios::app);
    out << "chunk 2 0\n100 80\nzap!\n";  // corrupt word inside a chunk
  }
  TraceChunk last;
  last.events = {{100, 120}, {101, 150}};
  ASSERT_TRUE(AppendStreamChunk(stream, last));

  // Strict mode refuses with a file:line diagnostic.
  std::string error;
  EXPECT_NE(RunCli({stream.c_str(), names_path.c_str(), "--follow"}, &error), 0);
  EXPECT_NE(error.find("cannot load stream"), std::string::npos);
  EXPECT_NE(error.find(stream + ":"), std::string::npos) << error;

  // Salvage mode resynchronizes and reports the corrupt word in the footer.
  error.clear();
  ::testing::internal::CaptureStdout();
  const int rc = RunCli(
      {stream.c_str(), names_path.c_str(), "--follow", "--salvage", "--summary", "5"},
      &error);
  const std::string out = ::testing::internal::GetCapturedStdout();
  EXPECT_EQ(rc, 0) << error;
  EXPECT_NE(out.find("Capture anomalies (salvaged):"), std::string::npos) << out;
  EXPECT_NE(out.find("corrupt words"), std::string::npos) << out;
}

TEST(AnalyzeCli, StatsPrintsThePipelineTelemetrySection) {
  const CliFiles files = WriteSessionFiles();
  std::string error;
  ::testing::internal::CaptureStdout();
  const int rc = RunCli(
      {files.capture.c_str(), files.names.c_str(), "--jobs", "1", "--summary",
       "5", "--stats"},
      &error);
  const std::string out = ::testing::internal::GetCapturedStdout();
  EXPECT_EQ(rc, 0) << error;
  EXPECT_NE(out.find("-- pipeline telemetry --"), std::string::npos) << out;
  // The decode hot path must have reported in: these metric names are part of
  // the documented telemetry surface.
  EXPECT_NE(out.find("decode.events"), std::string::npos) << out;
  EXPECT_NE(out.find("decode.finish"), std::string::npos) << out;
}

TEST(AnalyzeCli, StatsJsonEmitsTheTelemetryObject) {
  const CliFiles files = WriteSessionFiles();
  std::string error;
  ::testing::internal::CaptureStdout();
  const int rc = RunCli(
      {files.capture.c_str(), files.names.c_str(), "--jobs", "1", "--summary",
       "5", "--stats-json"},
      &error);
  const std::string out = ::testing::internal::GetCapturedStdout();
  EXPECT_EQ(rc, 0) << error;
  EXPECT_NE(out.find("{\"telemetry\": ["), std::string::npos) << out;
  EXPECT_NE(out.find("\"name\":\"decode.events\""), std::string::npos) << out;
  EXPECT_NE(out.find("\"kind\":\"counter\""), std::string::npos) << out;
}

TEST(AnalyzeCli, FollowProgressEmitsAHeartbeatPerChunk) {
  const std::string stream = ::testing::TempDir() + "/cli_progress.hwstream";
  const std::string names_path = ::testing::TempDir() + "/cli_progress.names";
  {
    std::ofstream names_out(names_path);
    names_out << "a/100\nb/102\n";
  }
  ASSERT_TRUE(SaveStreamHeader(stream, 24, 1'000'000));
  TraceChunk first;
  first.events = {{100, 10}, {102, 20}, {103, 60}};
  TraceChunk second;
  second.events = {{101, 90}};
  second.dropped_before = 4;
  ASSERT_TRUE(AppendStreamChunk(stream, first));
  ASSERT_TRUE(AppendStreamChunk(stream, second));

  std::string error;
  ::testing::internal::CaptureStdout();
  ::testing::internal::CaptureStderr();
  const int rc = RunCli({stream.c_str(), names_path.c_str(), "--follow",
                         "--progress", "--summary", "5"},
                        &error);
  const std::string out = ::testing::internal::GetCapturedStdout();
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(rc, 0) << error;
  // One heartbeat per drained chunk on STDERR (stdout stays machine-clean),
  // each carrying the cumulative event and anomaly counts plus a decode
  // rate.
  EXPECT_EQ(out.find("progress: "), std::string::npos) << out;
  std::size_t beats = 0;
  for (std::size_t at = err.find("progress: "); at != std::string::npos;
       at = err.find("progress: ", at + 1)) {
    ++beats;
  }
  EXPECT_EQ(beats, 2u) << err;
  EXPECT_NE(err.find("events/sec"), std::string::npos) << err;
  // The second chunk stamped 4 drops, so the final heartbeat counts anomalies.
  EXPECT_NE(err.find(" 4 anomalies"), std::string::npos) << err;
}

// --- The hwprof_capture CLI (--config and the lookup workload) --------------------

int RunCaptureCli(std::initializer_list<const char*> args, std::string* error) {
  std::vector<const char*> argv{"hwprof_capture"};
  argv.insert(argv.end(), args.begin(), args.end());
  ::testing::internal::CaptureStdout();
  const int rc = CaptureMain(static_cast<int>(argv.size()), argv.data(), error);
  ::testing::internal::GetCapturedStdout();
  return rc;
}

std::string SlurpFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

TEST(CaptureCli, ConfigFlagValidatesKnobNames) {
  const std::string cap = ::testing::TempDir() + "/cfg_err.capture";
  std::string error;
  EXPECT_EQ(RunCaptureCli({"lookup", cap.c_str(), "--config", "bogus"}, &error), 2);
  EXPECT_NE(error.find("cksum,pmap,namei"), std::string::npos);
  error.clear();
  EXPECT_EQ(RunCaptureCli({"lookup", cap.c_str(), "--config", "cksum,turbo"},
                          &error),
            2);
  EXPECT_NE(error.find("turbo"), std::string::npos);
}

TEST(CaptureCli, BaselineConfigReplaysByteIdenticalToDefault) {
  // `--config baseline` must be a no-op: the same deterministic capture an
  // unconfigured replay produces, run after run.
  const std::string dir = ::testing::TempDir();
  const std::string plain = dir + "/lk_plain.capture";
  const std::string baseline = dir + "/lk_baseline.capture";
  const std::string again = dir + "/lk_again.capture";
  std::string error;
  ASSERT_EQ(RunCaptureCli({"lookup", plain.c_str(), "--iters", "3", "--msec",
                           "150"},
                          &error),
            0)
      << error;
  ASSERT_EQ(RunCaptureCli({"lookup", baseline.c_str(), "--iters", "3",
                           "--msec", "150", "--config", "baseline"},
                          &error),
            0)
      << error;
  ASSERT_EQ(RunCaptureCli({"lookup", again.c_str(), "--iters", "3", "--msec",
                           "150", "--config", "none"},
                          &error),
            0)
      << error;
  const std::string plain_bytes = SlurpFile(plain);
  ASSERT_FALSE(plain_bytes.empty());
  EXPECT_EQ(SlurpFile(baseline), plain_bytes);
  EXPECT_EQ(SlurpFile(again), plain_bytes);
}

TEST(CaptureCli, OptimizationConfigChangesTheCapture) {
  // Turning every knob on must actually change the replayed kernel's
  // profile (the capture bytes), while staying a valid capture.
  const std::string dir = ::testing::TempDir();
  const std::string off = dir + "/lk_off.capture";
  const std::string on = dir + "/lk_on.capture";
  std::string error;
  ASSERT_EQ(RunCaptureCli({"lookup", off.c_str(), "--iters", "3", "--msec",
                           "150"},
                          &error),
            0)
      << error;
  ASSERT_EQ(RunCaptureCli({"lookup", on.c_str(), "--iters", "3", "--msec",
                           "150", "--config", "all"},
                          &error),
            0)
      << error;
  const std::string off_bytes = SlurpFile(off);
  const std::string on_bytes = SlurpFile(on);
  ASSERT_FALSE(off_bytes.empty());
  ASSERT_FALSE(on_bytes.empty());
  EXPECT_NE(on_bytes, off_bytes);
}

}  // namespace
}  // namespace hwprof
