// Shared helpers for the differential-equivalence tests: a small names
// file, adversarial fuzz-trace generators, and a fingerprint that renders
// EVERY observable of a decoded trace — all four reports plus every counter
// and attribution map — to one comparable string. Serial, streaming and
// parallel decodes of the same capture must produce byte-identical
// fingerprints; the fuzz suites assert exactly that.

#ifndef HWPROF_TESTS_TRACE_TESTUTIL_H_
#define HWPROF_TESTS_TRACE_TESTUTIL_H_

#include <gtest/gtest.h>

#include <initializer_list>
#include <string>
#include <type_traits>
#include <vector>

#include "src/analysis/callgraph.h"
#include "src/analysis/decoder.h"
#include "src/analysis/parallel.h"
#include "src/analysis/process_report.h"
#include "src/analysis/summary.h"
#include "src/analysis/trace_report.h"
#include "src/base/assert.h"
#include "src/base/rng.h"
#include "src/instr/tag_file.h"
#include "src/profhw/raw_trace.h"

namespace hwprof {

inline const TagFile& MakeNames() {
  static const TagFile* names = [] {
    auto* file = new TagFile();
    HWPROF_CHECK(TagFile::Parse(
        "a/100\n"
        "b/102\n"
        "c/104\n"
        "d/106\n"
        "swtch/200!\n"
        "idle_swtch/202!\n"
        "MARK/300=\n"
        "POINT/302=\n",
        file));
    return file;
  }();
  return *names;
}

template <typename Map>
std::string DumpMap(const Map& m) {
  std::string out;
  for (const auto& [k, v] : m) {
    out += "{";
    if constexpr (std::is_same_v<std::decay_t<decltype(k)>, std::string>) {
      out += k;
    } else {
      out += std::to_string(k);
    }
    out += ":";
    out += std::to_string(v);
    out += "}";
  }
  return out;
}

inline std::string Fingerprint(const DecodedTrace& d) {
  std::string out = Summary(d).Format(0);
  out += "\n--callgraph--\n" + CallGraph(d).Format(d);
  out += "\n--processes--\n" + ProcessReport(d).Format(d);
  out += "\n--trace--\n" + TraceReport::Format(d);
  out += "\n|events=" + std::to_string(d.event_count);
  out += "|truncated=" + std::to_string(d.truncated);
  out += "|start=" + std::to_string(d.start_time);
  out += "|end=" + std::to_string(d.end_time);
  out += "|idle=" + std::to_string(d.idle_time);
  out += "|stacks=" + std::to_string(d.stacks.size());
  out += "|steps=" + std::to_string(d.steps.size());
  out += "|unknown=" + std::to_string(d.unknown_tags) + DumpMap(d.unknown_tag_counts);
  out += "|orphan=" + std::to_string(d.orphan_exits) + DumpMap(d.orphan_exit_counts);
  out += "|preopen=" + DumpMap(d.preopen_exit_counts);
  out += "|unclosed=" + std::to_string(d.unclosed_entries) + DumpMap(d.unclosed_entry_counts);
  out += "|trunc_entries=" + DumpMap(d.truncated_entry_counts);
  out += "|dropped=" + std::to_string(d.dropped_events);
  out += "|gaps=" + std::to_string(d.capture_gaps);
  out += "|corrupt=" + std::to_string(d.corrupt_words);
  out += "|impossible=" + std::to_string(d.impossible_deltas);
  out += "|wrap_ambiguous=" + std::to_string(d.wrap_ambiguous_gaps);
  out += "|unaccounted=" + std::to_string(d.unaccounted_time);
  return out;
}

inline RawTrace Trace(std::initializer_list<RawEvent> events) {
  RawTrace raw;
  raw.events = events;
  return raw;
}

// Adversarial random trace with anomaly injection: unbalanced nesting,
// context switches (two distinct switch functions), inline markers, unknown
// tags, spurious exits, near-wrap gaps.
inline RawTrace FuzzTrace(std::uint64_t seed, int length) {
  Rng rng(seed);
  RawTrace raw;
  std::uint32_t now = 0;
  std::vector<std::uint16_t> stack;
  for (int i = 0; i < length; ++i) {
    now += rng.NextBool(0.02)
               ? (1u << 24) - 5 + static_cast<std::uint32_t>(rng.NextBelow(10))
               : static_cast<std::uint32_t>(1 + rng.NextBelow(200));
    const double roll = static_cast<double>(rng.NextBelow(1000)) / 1000.0;
    if (roll < 0.04) {
      raw.events.push_back(
          {static_cast<std::uint16_t>(300 + 2 * rng.NextBelow(2)), now});
    } else if (roll < 0.07) {
      raw.events.push_back({999, now});  // unknown tag
    } else if (roll < 0.11) {
      // Spurious exit for a function that may not be open (orphan).
      raw.events.push_back(
          {static_cast<std::uint16_t>(101 + 2 * rng.NextBelow(4)), now});
    } else if (roll < 0.22) {
      // Context switch entry/exit pair with an idle gap.
      const auto sw = static_cast<std::uint16_t>(200 + 2 * rng.NextBelow(2));
      raw.events.push_back({sw, now});
      now += static_cast<std::uint32_t>(1 + rng.NextBelow(500));
      raw.events.push_back({static_cast<std::uint16_t>(sw + 1), now});
    } else if (roll < 0.24) {
      // Bare switch exit: orphan swtch resolution / fresh-context path.
      raw.events.push_back({201, now});
    } else if (stack.size() < 8 && (stack.empty() || rng.NextBool(0.55))) {
      const auto tag = static_cast<std::uint16_t>(100 + 2 * rng.NextBelow(4));
      stack.push_back(tag);
      raw.events.push_back({tag, now});
    } else {
      const std::uint16_t tag = stack.back();
      stack.pop_back();
      raw.events.push_back({static_cast<std::uint16_t>(tag + 1), now});
    }
  }
  for (auto& e : raw.events) {
    e.timestamp &= (1u << 24) - 1;
  }
  raw.overflowed = (seed % 3 == 0);  // exercise the truncation flag too
  return raw;
}

inline void ExpectParallelMatchesSerial(const RawTrace& raw, const TagFile& names,
                                        const std::string& what) {
  const std::string serial = Fingerprint(Decoder::Decode(raw, names));
  for (unsigned jobs : {1u, 2u, 3u, 8u}) {
    for (std::size_t target : {std::size_t{1}, std::size_t{64}}) {
      ParallelOptions opts;
      opts.jobs = jobs;
      opts.shard_target_ops = target;
      const std::string par = Fingerprint(DecodeParallel(raw, names, opts));
      ASSERT_EQ(par, serial)
          << what << " jobs=" << jobs << " shard_target_ops=" << target;
    }
  }
}

}  // namespace hwprof

#endif  // HWPROF_TESTS_TRACE_TESTUTIL_H_
