// Serial line / tty: canonical input, echo round trip, interrupt latency,
// and the single-register overrun that makes latency worth measuring.

#include <gtest/gtest.h>

#include <memory>

#include "src/analysis/decoder.h"
#include "src/kern/tty.h"
#include "src/kern/user_env.h"
#include "src/workloads/testbed.h"
#include "src/workloads/workloads.h"

namespace hwprof {
namespace {

TEST(Tty, TypedLineIsReadAndEchoed) {
  Testbed tb;
  Kernel& k = tb.kernel();
  auto term = std::make_unique<TerminalHost>(k);
  std::string line;
  k.Spawn("getty", [&](UserEnv& env) { line = env.ReadTtyLine(); });
  term->Type("hello\n", Msec(50), Msec(3));
  k.Run(Sec(2));
  EXPECT_EQ(line, "hello");
  EXPECT_EQ(term->echoed(), "hello\n");
  EXPECT_EQ(k.tty().overruns(), 0u);
  EXPECT_EQ(k.tty().chars_received(), 6u);
}

TEST(Tty, MultipleLinesQueueInOrder) {
  Testbed tb;
  Kernel& k = tb.kernel();
  auto term = std::make_unique<TerminalHost>(k);
  std::vector<std::string> lines;
  k.Spawn("getty", [&](UserEnv& env) {
    for (int i = 0; i < 3; ++i) {
      lines.push_back(env.ReadTtyLine());
    }
  });
  term->Type("one\ntwo\nthree\n", Msec(50), Msec(3));
  k.Run(Sec(2));
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0], "one");
  EXPECT_EQ(lines[1], "two");
  EXPECT_EQ(lines[2], "three");
}

TEST(Tty, InterruptLatencyIsTensOfMicroseconds) {
  Testbed tb;
  Kernel& k = tb.kernel();
  auto term = std::make_unique<TerminalHost>(k);
  k.Spawn("getty", [&](UserEnv& env) { env.ReadTtyLine(); });
  term->Type("latency\n", Msec(50), Msec(5));
  k.Run(Sec(2));
  ASSERT_FALSE(k.tty().latencies().empty());
  for (Nanoseconds lat : k.tty().latencies()) {
    EXPECT_LT(lat, Msec(1)) << "char sat unserviced too long on an idle system";
  }
}

TEST(Tty, BlockedInterruptsCauseOverruns) {
  // A process sitting at splhigh for longer than the inter-character gap
  // loses characters — the 16450 has a single holding register.
  Testbed tb;
  Kernel& k = tb.kernel();
  auto term = std::make_unique<TerminalHost>(k);
  k.Spawn("hog", [&](UserEnv& env) {
    (void)env;
    const int s = k.spl().splhigh();
    k.cpu().Use(Msec(100));  // masked for 100 ms while chars arrive at 3 ms
    k.spl().splx(s);
  });
  term->Type("0123456789ABCDEF\n", Msec(20), Msec(3));
  k.Run(Sec(1));
  EXPECT_GT(k.tty().overruns(), 5u);
}

TEST(Tty, FastPasteSurvivesWhenUnmasked) {
  // 1 ms per character (faster than 9600 baud): still no loss when the
  // system is otherwise idle.
  Testbed tb;
  Kernel& k = tb.kernel();
  auto term = std::make_unique<TerminalHost>(k);
  std::string line;
  k.Spawn("getty", [&](UserEnv& env) { line = env.ReadTtyLine(); });
  term->Type("the quick brown fox jumps over the lazy dog\n", Msec(20), Msec(1));
  k.Run(Sec(2));
  EXPECT_EQ(line, "the quick brown fox jumps over the lazy dog");
  EXPECT_EQ(k.tty().overruns(), 0u);
}

TEST(Tty, CharInputVisibleToTheProfiler) {
  // The paper's motivating measurement, end to end: siointr/ttyinput show
  // up in the capture with per-call costs.
  Testbed tb;
  Kernel& k = tb.kernel();
  auto term = std::make_unique<TerminalHost>(k);
  k.Spawn("getty", [&](UserEnv& env) { env.ReadTtyLine(); });
  tb.Arm();
  term->Type("profile me\n", Msec(20), Msec(5));
  k.Run(Sec(1));
  DecodedTrace d = Decoder::Decode(tb.StopAndUpload(), tb.tags());
  const FuncStats* siointr = d.Stats("siointr");
  const FuncStats* ttyinput = d.Stats("ttyinput");
  ASSERT_NE(siointr, nullptr);
  ASSERT_NE(ttyinput, nullptr);
  EXPECT_EQ(ttyinput->calls, 11u);  // one per character
  EXPECT_GT(ToWholeUsec(siointr->AvgNet()), 5u);
  EXPECT_LT(ToWholeUsec(siointr->elapsed / siointr->calls), 200u);
}

}  // namespace
}  // namespace hwprof
