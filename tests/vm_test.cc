// Virtual memory: vmspace layout, faults, COW fork, exec replacement,
// teardown, and the pmap bookkeeping underneath.

#include <gtest/gtest.h>

#include "src/analysis/decoder.h"
#include "src/kern/fs.h"
#include "src/kern/user_env.h"
#include "src/kern/vm.h"
#include "src/kern/vm_map.h"
#include "src/workloads/testbed.h"
#include "src/workloads/workloads.h"

namespace hwprof {
namespace {

void InProc(Testbed& tb, std::function<void(Kernel&)> body) {
  Kernel& k = tb.kernel();
  bool done = false;
  k.Spawn("t", [&, body = std::move(body)](UserEnv& env) {
    (void)env;
    body(k);
    done = true;
  });
  k.Run(Sec(30));
  ASSERT_TRUE(done);
}

TEST(Vm, NewVmspaceLayout) {
  Testbed tb;
  ImageLayout layout;
  layout.text_pages = 10;
  layout.data_pages = 20;
  layout.bss_pages = 5;
  layout.stack_pages = 3;
  auto vm = tb.kernel().vm().NewVmspace(layout, 15);
  ASSERT_EQ(vm->entries.size(), 4u);
  EXPECT_EQ(vm->entries[0].kind, VmEntryKind::kText);
  EXPECT_FALSE(vm->entries[0].writable);
  EXPECT_EQ(vm->entries[1].kind, VmEntryKind::kData);
  EXPECT_TRUE(vm->entries[1].writable);
  EXPECT_EQ(vm->TotalPages(), 38u);
  // Entries do not overlap and are ordered.
  for (std::size_t i = 1; i < vm->entries.size(); ++i) {
    EXPECT_GE(vm->entries[i].start_page, vm->entries[i - 1].end_page());
  }
  // Requested residency was pre-populated (+1 rounding slack per entry).
  EXPECT_GE(vm->pmap.Resident(), 15u);
  EXPECT_LE(vm->pmap.Resident(), 19u);
}

TEST(Vm, FaultPopulatesPage) {
  Testbed tb;
  InProc(tb, [](Kernel& k) {
    ImageLayout layout;
    auto vm = k.vm().NewVmspace(layout, 0);
    const std::uint32_t vpage = vm->entries[1].start_page;  // data
    EXPECT_EQ(vm->pmap.Resident(), 0u);
    EXPECT_TRUE(k.vm().Fault(*vm, vpage, true));
    EXPECT_EQ(vm->pmap.Resident(), 1u);
    EXPECT_TRUE(vm->pmap.pages.count(vpage));
  });
}

TEST(Vm, FaultOutsideAnyEntryFails) {
  Testbed tb;
  InProc(tb, [](Kernel& k) {
    ImageLayout layout;
    auto vm = k.vm().NewVmspace(layout, 0);
    EXPECT_FALSE(k.vm().Fault(*vm, 0xFFFF, false));
  });
}

TEST(Vm, WriteFaultOnReadOnlyTextFails) {
  Testbed tb;
  InProc(tb, [](Kernel& k) {
    ImageLayout layout;
    auto vm = k.vm().NewVmspace(layout, 0);
    const std::uint32_t text_page = vm->entries[0].start_page;
    EXPECT_FALSE(k.vm().Fault(*vm, text_page, /*write=*/true));
    EXPECT_TRUE(k.vm().Fault(*vm, text_page, /*write=*/false));
  });
}

TEST(Vm, FaultCostMatchesTable1) {
  Testbed tb;
  InProc(tb, [](Kernel& k) {
    ImageLayout layout;
    auto vm = k.vm().NewVmspace(layout, 0);
    const Nanoseconds t0 = k.Now();
    k.vm().Fault(*vm, vm->entries[1].start_page, true);
    const Nanoseconds t = k.Now() - t0;
    // Table 1: vm_fault ≈ 410 µs inclusive.
    EXPECT_GT(t, Usec(300));
    EXPECT_LT(t, Usec(550));
  });
}

TEST(Vm, ForkCopiesEntriesAndWriteProtectsParent) {
  Testbed tb;
  InProc(tb, [](Kernel& k) {
    ImageLayout layout;
    auto parent = k.vm().NewVmspace(layout, 30);
    Vmspace child;
    k.vm().ForkVmspace(*parent, child);
    EXPECT_EQ(child.entries.size(), parent->entries.size());
    // The child sees every resident parent page (as COW).
    EXPECT_EQ(child.pmap.Resident(), parent->pmap.Resident());
    // Parent's writable resident pages are now COW-protected.
    for (const VmEntry& e : parent->entries) {
      if (!e.writable) {
        continue;
      }
      for (std::uint32_t p = e.start_page; p < e.end_page(); ++p) {
        auto it = parent->pmap.pages.find(p);
        if (it != parent->pmap.pages.end()) {
          EXPECT_FALSE(it->second.writable);
          EXPECT_TRUE(it->second.copy_on_write);
        }
      }
    }
  });
}

TEST(Vm, ExecReplaceInstallsFreshImage) {
  Testbed tb;
  InProc(tb, [](Kernel& k) {
    ImageLayout old_layout;
    old_layout.data_pages = 100;
    auto vm = k.vm().NewVmspace(old_layout, 80);
    ImageLayout new_layout;
    new_layout.text_pages = 8;
    new_layout.data_pages = 8;
    new_layout.bss_pages = 2;
    new_layout.stack_pages = 2;
    k.vm().ExecReplace(*vm, new_layout, 10);
    EXPECT_EQ(vm->TotalPages(), 20u);
    EXPECT_EQ(vm->pmap.Resident(), 10u);  // only the demanded working set
  });
}

TEST(Vm, DestroyEmptiesEverything) {
  Testbed tb;
  InProc(tb, [](Kernel& k) {
    ImageLayout layout;
    auto vm = k.vm().NewVmspace(layout, 20);
    k.vm().DestroyVmspace(*vm);
    EXPECT_TRUE(vm->entries.empty());
    EXPECT_EQ(vm->pmap.Resident(), 0u);
  });
}

TEST(Vm, TouchPagesFaultsOnlyOnce) {
  Testbed tb;
  Kernel& k = tb.kernel();
  k.Spawn(
      "toucher",
      [&](UserEnv& env) {
        const std::uint64_t faults0 = k.vm().faults();
        env.TouchPages(10, true);
        const std::uint64_t after_first = k.vm().faults() - faults0;
        env.TouchPages(10, true);  // already resident: no new faults
        const std::uint64_t after_second = k.vm().faults() - faults0;
        EXPECT_GT(after_first, 0u);
        EXPECT_EQ(after_first, after_second);
      },
      /*resident_pages=*/1);
  k.Run(Sec(5));
}

TEST(Vm, PmapPteBatchKnobChargesStepCostWithinOnePtPage) {
  // KernConfig pmap_batch_pte: consecutive walks inside one page-table page
  // pay the cheap batch step; crossing into another page-table page (or
  // running with the knob off) pays the full walk. Lookup results never
  // change — only the modeled charge does.
  TestbedConfig batch_config;
  batch_config.kernel.knobs.pmap_batch_pte = true;
  Testbed batch(batch_config);
  Testbed base;

  auto walk = [](Testbed& tb, std::uint32_t start, std::uint32_t stride, int n) {
    Kernel& k = tb.kernel();
    ImageLayout layout;
    auto vm = k.vm().NewVmspace(layout, 0);
    const Nanoseconds before = k.cpu().busy_ns();
    for (int i = 0; i < n; ++i) {
      k.vm().PmapPte(vm->pmap, start + static_cast<std::uint32_t>(i) * stride);
    }
    return k.cpu().busy_ns() - before;
  };

  // 64 sequential walks in page-table page 0: first is a full walk, the
  // other 63 ride the batch step.
  const Nanoseconds batch_seq = walk(batch, 0, 1, 64);
  const Nanoseconds base_seq = walk(base, 0, 1, 64);
  const Kernel& k = base.kernel();
  EXPECT_EQ(base_seq - batch_seq,
            63 * (k.cost().pmap_pte_ns - k.cost().pmap_pte_batch_step_ns));

  // Alternating between two page-table pages defeats the batch entirely.
  const Nanoseconds batch_alt = walk(batch, 0, Pmap::kPtesPerPtPage, 2);
  const Nanoseconds base_alt = walk(base, 0, Pmap::kPtesPerPtPage, 2);
  EXPECT_EQ(batch_alt, base_alt);

  // Same residency answers regardless of the knob.
  ImageLayout layout;
  auto vm_batch = batch.kernel().vm().NewVmspace(layout, 10);
  auto vm_base = base.kernel().vm().NewVmspace(layout, 10);
  for (std::uint32_t vpage = 0; vpage < 40; ++vpage) {
    EXPECT_EQ(batch.kernel().vm().PmapPte(vm_batch->pmap, vpage),
              base.kernel().vm().PmapPte(vm_base->pmap, vpage))
        << vpage;
  }
}

TEST(Vm, ForkPmapPteTrafficScalesWithResidency) {
  // The paper: "pmap_pte is called 1053 times when a fork is executed" for
  // a shell-sized process. Verify the scaling via the profiler itself.
  for (const int resident : {100, 1000}) {
    Testbed tb;
    Kernel& k = tb.kernel();
    k.fs().InstallFile("/bin/t", PatternBytes(8 * 1024));
    tb.Arm();
    k.Spawn(
        "sh",
        [&](UserEnv& env) {
          env.Vfork([](UserEnv& c) {
            c.Exit(0);
          });
          env.Wait();
        },
        resident);
    k.Run(Sec(5));
    RawTrace raw = tb.StopAndUpload();
    DecodedTrace decoded = Decoder::Decode(raw, tb.tags());
    const FuncStats* pte = decoded.Stats("pmap_pte");
    ASSERT_NE(pte, nullptr);
    // Roughly one pmap_pte per resident page (protect walk), plus noise.
    EXPECT_GT(pte->calls, static_cast<std::uint64_t>(resident) * 7 / 10);
    EXPECT_LT(pte->calls, static_cast<std::uint64_t>(resident) * 3 + 200);
  }
}

}  // namespace
}  // namespace hwprof
