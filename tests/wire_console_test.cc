// Remaining device models: the shared Ethernet medium's serialisation and
// the console's scroll accounting.

#include <gtest/gtest.h>

#include <vector>

#include "src/kern/console.h"
#include "src/kern/net_wire.h"
#include "src/kern/user_env.h"
#include "src/sim/machine.h"
#include "src/workloads/testbed.h"

namespace hwprof {
namespace {

class RecordingNode : public EtherNode {
 public:
  explicit RecordingNode(std::uint8_t id) : id_(id) {}
  std::uint8_t node_id() const override { return id_; }
  void OnFrame(const Bytes& frame) override {
    arrivals_.push_back({frame, 0});
    arrivals_.back().second = frame.size();
  }
  std::vector<std::pair<Bytes, std::size_t>> arrivals_;

 private:
  std::uint8_t id_;
};

TEST(EtherSegment, DeliversToAllButTheSender) {
  Machine machine;
  EtherSegment wire(machine);
  RecordingNode a(1);
  RecordingNode b(2);
  RecordingNode c(3);
  wire.Attach(&a);
  wire.Attach(&b);
  wire.Attach(&c);
  wire.Transmit(1, Bytes(100, 0xAA));
  while (machine.cpu().IdleWait(Sec(1))) {
  }
  EXPECT_EQ(a.arrivals_.size(), 0u);
  EXPECT_EQ(b.arrivals_.size(), 1u);
  EXPECT_EQ(c.arrivals_.size(), 1u);
  EXPECT_EQ(wire.frames_carried(), 1u);
  EXPECT_EQ(wire.bytes_carried(), 100u);
}

TEST(EtherSegment, MediumSerialisesBackToBackFrames) {
  Machine machine;
  EtherSegment wire(machine);
  RecordingNode rx(2);
  wire.Attach(&rx);
  // Two 1250-byte frames queued at t=0: each takes 1 ms + IFG on the wire.
  const Nanoseconds done1 = wire.Transmit(1, Bytes(1250, 1));
  const Nanoseconds done2 = wire.Transmit(1, Bytes(1250, 2));
  const Nanoseconds per_frame = machine.cost().EtherWire(1250);
  EXPECT_EQ(done1, per_frame);
  EXPECT_EQ(done2, 2 * per_frame);  // waited for the medium
  while (machine.cpu().IdleWait(Sec(1))) {
  }
  ASSERT_EQ(rx.arrivals_.size(), 2u);
  EXPECT_EQ(rx.arrivals_[0].first[0], 1);
  EXPECT_EQ(rx.arrivals_[1].first[0], 2);
}

TEST(EtherSegment, WireRateIs10Mbit) {
  Machine machine;
  // 1250 bytes = 10000 bits at 10 Mb/s = 1 ms + 9.6 us IFG.
  EXPECT_EQ(machine.cost().EtherWire(1250), 1'000'000u + 9'600u);
}

TEST(Console, ScrollsOnlyPastTheBottomRow) {
  Testbed tb;
  Kernel& k = tb.kernel();
  // Boot chatter already filled the screen (26 lines on a 25-row screen:
  // one scroll happened during Boot).
  const std::uint64_t scrolls_after_boot = k.console().scrolls();
  EXPECT_GE(scrolls_after_boot, 1u);
  bool ran = false;
  k.Spawn("writer", [&](UserEnv& env) {
    for (int i = 0; i < 10; ++i) {
      env.Print("line\n");
    }
    ran = true;
  });
  k.Run(Sec(1));
  ASSERT_TRUE(ran);
  // Every further line scrolls.
  EXPECT_EQ(k.console().scrolls(), scrolls_after_boot + 10);
}

TEST(Console, LongLinesWrap) {
  Testbed tb;
  Kernel& k = tb.kernel();
  const std::uint64_t scrolls0 = k.console().scrolls();
  bool ran = false;
  k.Spawn("writer", [&](UserEnv& env) {
    // 240 columns without a newline: wraps into 3 rows -> 3 scrolls on a
    // full screen.
    env.Print(std::string(240, 'x'));
    ran = true;
  });
  k.Run(Sec(1));
  ASSERT_TRUE(ran);
  EXPECT_EQ(k.console().scrolls(), scrolls0 + 3);
}

TEST(Console, ScrollCostIsMilliseconds) {
  // Fig 5's bcopyb: one scroll of the ISA video memory costs ~2-4 ms.
  Testbed tb;
  Kernel& k = tb.kernel();
  Nanoseconds took = 0;
  k.Spawn("writer", [&](UserEnv& env) {
    const Nanoseconds t0 = k.Now();
    env.Print("scroll me\n");
    took = k.Now() - t0;
  });
  k.Run(Sec(1));
  EXPECT_GT(took, Msec(2));
  EXPECT_LT(took, Msec(5));
}

}  // namespace
}  // namespace hwprof
