#include "tools/analyze_main.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "src/analysis/callgraph.h"
#include "src/analysis/decoder.h"
#include "src/analysis/grouping.h"
#include "src/analysis/histogram.h"
#include "src/analysis/process_report.h"
#include "src/analysis/summary.h"
#include "src/analysis/trace_report.h"
#include "src/base/strings.h"
#include "src/profhw/smart_socket.h"

namespace hwprof {
namespace {

bool ReadFileToString(const std::string& path, std::string* out) {
  std::ifstream in(path);
  if (!in) {
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

}  // namespace

int AnalyzeMain(int argc, const char* const* argv, std::string* error) {
  if (argc < 3) {
    *error =
        "usage: hwprof_analyze <capture> <names> [--summary N] [--trace N] "
        "[--callgraph N] [--histogram FN] [--spl]";
    return 2;
  }

  RawTrace raw;
  if (!LoadCapture(argv[1], &raw)) {
    *error = StrFormat("cannot load capture '%s'", argv[1]);
    return 1;
  }
  std::string names_text;
  TagFile names;
  if (!ReadFileToString(argv[2], &names_text) || !TagFile::Parse(names_text, &names)) {
    *error = StrFormat("cannot parse names file '%s'", argv[2]);
    return 1;
  }

  const DecodedTrace decoded = Decoder::Decode(raw, names);
  if (decoded.unknown_tags > 0) {
    std::printf("warning: %llu events carried tags missing from the names file\n",
                static_cast<unsigned long long>(decoded.unknown_tags));
  }

  bool did_something = false;
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_number = [&](std::size_t fallback) -> std::size_t {
      if (i + 1 < argc) {
        std::uint64_t value = 0;
        if (ParseUint(argv[i + 1], &value)) {
          ++i;
          return static_cast<std::size_t>(value);
        }
      }
      return fallback;
    };
    if (arg == "--summary") {
      std::printf("%s\n", Summary(decoded).Format(next_number(20)).c_str());
      did_something = true;
    } else if (arg == "--trace") {
      TraceReportOptions opts;
      opts.max_lines = next_number(60);
      std::printf("%s\n", TraceReport::Format(decoded, opts).c_str());
      did_something = true;
    } else if (arg == "--callgraph") {
      std::printf("%s", CallGraph(decoded).Format(decoded, next_number(10)).c_str());
      did_something = true;
    } else if (arg == "--histogram") {
      if (i + 1 >= argc) {
        *error = "--histogram needs a function name";
        return 2;
      }
      const std::string fn = argv[++i];
      std::printf("%s\n", Histogram::ForFunction(decoded, fn).Format(fn).c_str());
      did_something = true;
    } else if (arg == "--processes") {
      ProcessReport report(decoded);
      std::printf("%s\n", report.Format(decoded).c_str());
      did_something = true;
    } else if (arg == "--spl") {
      Grouping grouping(decoded, Grouping::SplGroup(decoded));
      std::printf("%s\n", grouping.Format().c_str());
      did_something = true;
    } else {
      *error = StrFormat("unknown option '%s'", arg.c_str());
      return 2;
    }
  }
  if (!did_something) {
    std::printf("%s\n", Summary(decoded).Format(20).c_str());
  }
  return 0;
}

}  // namespace hwprof
