#include "tools/analyze_main.h"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>

#include "src/analysis/callgraph.h"
#include "src/analysis/decoder.h"
#include "src/analysis/grouping.h"
#include "src/analysis/parallel.h"
#include "src/analysis/histogram.h"
#include "src/analysis/process_report.h"
#include "src/analysis/summary.h"
#include "src/analysis/trace_report.h"
#include "src/base/strings.h"
#include "src/profhw/smart_socket.h"

namespace hwprof {
namespace {

bool ReadFileToString(const std::string& path, std::string* out) {
  std::ifstream in(path);
  if (!in) {
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

// Incremental analysis of a chunked stream file: feeds each drained bank to
// a StreamingDecoder, printing a status line and a running Figure 3 summary
// as it goes. `--poll N` re-reads the file N times total (with a short real
// sleep in between) so a still-appending writer can be tailed; new complete
// chunks are picked up where the previous pass stopped. A chunk the writer
// never finished is decoded as a truncated tail at the end.
int FollowMain(const char* path, const TagFile& names, int argc, const char* const* argv,
               std::string* error) {
  std::size_t rows = 20;
  int polls = 1;
  // Default 1: live per-chunk summaries need the serial decoder's stats
  // snapshot. `--jobs 0` (or >1) hands decided chunks to the worker pool
  // instead and prints the summary once, from the merged final trace.
  unsigned jobs = 1;
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_number = [&](std::size_t fallback) -> std::size_t {
      if (i + 1 < argc) {
        std::uint64_t value = 0;
        if (ParseUint(argv[i + 1], &value)) {
          ++i;
          return static_cast<std::size_t>(value);
        }
      }
      return fallback;
    };
    if (arg == "--follow") {
      continue;
    } else if (arg == "--summary") {
      rows = next_number(20);
    } else if (arg == "--poll") {
      polls = static_cast<int>(next_number(1));
    } else if (arg == "--jobs") {
      jobs = static_cast<unsigned>(next_number(0));
    } else {
      *error = StrFormat("option '%s' is not available with --follow", arg.c_str());
      return 2;
    }
  }

  StreamCapture capture;
  if (!LoadStream(path, &capture)) {
    *error = StrFormat("cannot load stream file '%s'", path);
    return 1;
  }

  if (jobs != 1) {
    ParallelOptions popts;
    popts.jobs = jobs;
    ParallelAnalyzer analyzer(names, capture.timer_bits, capture.timer_clock_hz, popts);
    std::size_t fed = 0;
    for (int pass = 0; pass < polls; ++pass) {
      if (pass > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(200));
        if (!LoadStream(path, &capture)) {
          *error = StrFormat("cannot re-read stream file '%s'", path);
          return 1;
        }
      }
      const std::size_t complete = capture.chunks.size() - (capture.truncated_tail ? 1 : 0);
      for (; fed < complete; ++fed) {
        const TraceChunk& chunk = capture.chunks[fed];
        analyzer.FeedChunk(chunk);
        std::printf(
            "chunk %zu: %zu events (%llu dropped before) | stream so far: %llu events, "
            "%llu dropped, %zu shards in flight\n",
            fed, chunk.events.size(),
            static_cast<unsigned long long>(chunk.dropped_before),
            static_cast<unsigned long long>(analyzer.events_seen()),
            static_cast<unsigned long long>(analyzer.dropped_events()),
            analyzer.shards_planned());
      }
    }
    bool truncated = false;
    if (capture.truncated_tail && fed < capture.chunks.size()) {
      analyzer.FeedChunk(capture.chunks[fed]);
      ++fed;
      truncated = true;
    }
    const DecodedTrace decoded = analyzer.Finish(truncated);
    std::printf("end of stream: %zu chunks, %llu events, %llu dropped in %llu gaps%s\n",
                fed, static_cast<unsigned long long>(decoded.event_count),
                static_cast<unsigned long long>(decoded.dropped_events),
                static_cast<unsigned long long>(decoded.capture_gaps),
                truncated ? " (truncated tail)" : "");
    std::printf("%s\n", Summary(decoded).Format(rows).c_str());
    return 0;
  }
  StreamingDecoder decoder(names, capture.timer_bits, capture.timer_clock_hz);
  std::size_t fed = 0;
  for (int pass = 0; pass < polls; ++pass) {
    if (pass > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(200));
      if (!LoadStream(path, &capture)) {
        *error = StrFormat("cannot re-read stream file '%s'", path);
        return 1;
      }
    }
    const std::size_t complete = capture.chunks.size() - (capture.truncated_tail ? 1 : 0);
    for (; fed < complete; ++fed) {
      const TraceChunk& chunk = capture.chunks[fed];
      decoder.FeedChunk(chunk);
      std::printf(
          "chunk %zu: %zu events (%llu dropped before) | stream so far: %llu events, "
          "%llu dropped, %zu awaiting lookahead\n",
          fed, chunk.events.size(), static_cast<unsigned long long>(chunk.dropped_before),
          static_cast<unsigned long long>(decoder.events_seen()),
          static_cast<unsigned long long>(decoder.dropped_events()), decoder.pending());
      std::printf("%s\n", Summary(decoder.SnapshotStats()).Format(rows).c_str());
    }
  }
  bool truncated = false;
  if (capture.truncated_tail && fed < capture.chunks.size()) {
    // The writer never finished this chunk; decode what made it to disk.
    decoder.FeedChunk(capture.chunks[fed]);
    ++fed;
    truncated = true;
  }
  const DecodedTrace decoded = decoder.Finish(truncated);
  std::printf("end of stream: %zu chunks, %llu events, %llu dropped in %llu gaps%s\n", fed,
              static_cast<unsigned long long>(decoded.event_count),
              static_cast<unsigned long long>(decoded.dropped_events),
              static_cast<unsigned long long>(decoded.capture_gaps),
              truncated ? " (truncated tail)" : "");
  std::printf("%s\n", Summary(decoded).Format(rows).c_str());
  return 0;
}

}  // namespace

int AnalyzeMain(int argc, const char* const* argv, std::string* error) {
  if (argc < 3) {
    *error =
        "usage: hwprof_analyze <capture> <names> [--summary N] [--trace N] "
        "[--callgraph N] [--histogram FN] [--spl] [--jobs N] | <stream> <names> "
        "--follow [--summary N] [--poll N] [--jobs N]";
    return 2;
  }

  std::string names_text;
  TagFile names;
  std::vector<TagDiag> names_diags;
  const bool have_names = ReadFileToString(argv[2], &names_text) &&
                          TagFile::Parse(names_text, &names, &names_diags);
  auto names_error = [&] {
    std::string message = StrFormat("cannot parse names file '%s'", argv[2]);
    for (const TagDiag& d : names_diags) {
      message += StrFormat("\n%s:%d: %s", argv[2], d.line, d.message.c_str());
    }
    return message;
  };

  for (int i = 3; i < argc; ++i) {
    if (std::string(argv[i]) == "--follow") {
      if (!have_names) {
        *error = names_error();
        return 1;
      }
      return FollowMain(argv[1], names, argc, argv, error);
    }
  }

  RawTrace raw;
  if (!LoadCapture(argv[1], &raw)) {
    *error = StrFormat("cannot load capture '%s'", argv[1]);
    return 1;
  }
  if (!have_names) {
    *error = names_error();
    return 1;
  }

  // `--jobs` is resolved before decoding; the remaining options are consumed
  // by the report loop below. 1 selects the serial decoder outright; any
  // other value shards the decode across a worker pool (0 = hardware
  // concurrency) with byte-identical output.
  unsigned jobs = 0;
  bool serial = false;
  for (int i = 3; i < argc; ++i) {
    if (std::string(argv[i]) == "--jobs" && i + 1 < argc) {
      std::uint64_t value = 0;
      if (ParseUint(argv[i + 1], &value)) {
        jobs = static_cast<unsigned>(value);
        serial = (jobs == 1);
      }
    }
  }

  const DecodedTrace decoded =
      serial ? Decoder::Decode(raw, names)
             : DecodeParallel(raw, names, ParallelOptions{.jobs = jobs});
  if (decoded.unknown_tags > 0) {
    std::printf("warning: %llu events carried tags missing from the names file\n",
                static_cast<unsigned long long>(decoded.unknown_tags));
  }

  bool did_something = false;
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_number = [&](std::size_t fallback) -> std::size_t {
      if (i + 1 < argc) {
        std::uint64_t value = 0;
        if (ParseUint(argv[i + 1], &value)) {
          ++i;
          return static_cast<std::size_t>(value);
        }
      }
      return fallback;
    };
    if (arg == "--summary") {
      std::printf("%s\n", Summary(decoded).Format(next_number(20)).c_str());
      did_something = true;
    } else if (arg == "--trace") {
      TraceReportOptions opts;
      opts.max_lines = next_number(60);
      std::printf("%s\n", TraceReport::Format(decoded, opts).c_str());
      did_something = true;
    } else if (arg == "--callgraph") {
      std::printf("%s", CallGraph(decoded).Format(decoded, next_number(10)).c_str());
      did_something = true;
    } else if (arg == "--histogram") {
      if (i + 1 >= argc) {
        *error = "--histogram needs a function name";
        return 2;
      }
      const std::string fn = argv[++i];
      std::printf("%s\n", Histogram::ForFunction(decoded, fn).Format(fn).c_str());
      did_something = true;
    } else if (arg == "--processes") {
      ProcessReport report(decoded);
      std::printf("%s\n", report.Format(decoded).c_str());
      did_something = true;
    } else if (arg == "--spl") {
      Grouping grouping(decoded, Grouping::SplGroup(decoded));
      std::printf("%s\n", grouping.Format().c_str());
      did_something = true;
    } else if (arg == "--jobs") {
      next_number(0);  // already consumed before the decode
    } else {
      *error = StrFormat("unknown option '%s'", arg.c_str());
      return 2;
    }
  }
  if (!did_something) {
    std::printf("%s\n", Summary(decoded).Format(20).c_str());
  }
  return 0;
}

}  // namespace hwprof
