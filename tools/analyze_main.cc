#include "tools/analyze_main.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <thread>

#include "src/analysis/callgraph.h"
#include "src/analysis/decoder.h"
#include "src/analysis/diff.h"
#include "src/analysis/grouping.h"
#include "src/analysis/parallel.h"
#include "src/analysis/histogram.h"
#include "src/analysis/process_report.h"
#include "src/analysis/summary.h"
#include "src/analysis/trace_report.h"
#include "src/base/mmap_file.h"
#include "src/base/strings.h"
#include "src/obs/telemetry.h"
#include "src/profhw/binary_trace.h"
#include "src/profhw/smart_socket.h"

namespace hwprof {
namespace {

bool ReadFileToString(const std::string& path, std::string* out) {
  std::ifstream in(path);
  if (!in) {
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

// "file:line: reason" for every parse problem, appended to `message` (the
// same shape TagFile diagnostics are printed in; line 0 is file-level).
void AppendTraceDiags(const std::string& path, const std::vector<TraceDiag>& diags,
                      std::string* message) {
  for (const TraceDiag& d : diags) {
    if (d.line > 0) {
      *message += StrFormat("\n%s:%d: %s", path.c_str(), d.line, d.message.c_str());
    } else {
      *message += StrFormat("\n%s: %s", path.c_str(), d.message.c_str());
    }
  }
}

// Pipeline-telemetry section (--stats / --stats-json): everything src/obs
// accumulated over this process — load, decode, shard replay, merge.
void PrintTelemetry(bool text, bool json) {
  if (!text && !json) {
    return;
  }
  const obs::Snapshot snap = obs::GlobalSnapshot();
  if (text) {
    std::printf("-- pipeline telemetry %s--\n%s",
                obs::kTelemetryCompiledIn ? "" : "(compiled out) ",
                snap.FormatText(2).c_str());
  }
  if (json) {
    std::printf("{\"telemetry\": %s}\n", snap.FormatJson().c_str());
  }
}

// Everything HasAnomalies() counts, as one number for the --progress
// heartbeat.
std::uint64_t AnomalyTotal(const DecodedTrace& d) {
  return d.corrupt_words + d.impossible_deltas + d.wrap_ambiguous_gaps +
         d.unknown_tags + d.orphan_exits + d.dropped_events +
         d.MidTraceUnclosedEntries();
}

// The batch wrappers (Decoder::Decode / DecodeParallel) plus salvage-load
// corrupt-word accounting, which has to be injected before the feed.
DecodedTrace DecodeCapture(const RawTrace& raw, const TagFile& names, bool serial,
                           unsigned jobs, std::uint64_t corrupt_words) {
  if (serial) {
    StreamingDecoder decoder(names, raw.timer_bits, raw.timer_clock_hz,
                             StreamingOptions{.retain_structure = true});
    decoder.NoteCorruptWords(corrupt_words);
    decoder.NoteDropped(raw.dropped_events);
    decoder.SetClockEnvelope(raw.capture_elapsed_ns);
    decoder.Feed(raw.events);
    return decoder.Finish(raw.overflowed);
  }
  ParallelAnalyzer analyzer(names, raw.timer_bits, raw.timer_clock_hz,
                            ParallelOptions{.jobs = jobs});
  analyzer.NoteCorruptWords(corrupt_words);
  analyzer.NoteDropped(raw.dropped_events);
  analyzer.SetClockEnvelope(raw.capture_elapsed_ns);
  analyzer.Feed(raw.events);
  return analyzer.Finish(raw.overflowed);
}

// Zero-copy fast path for binary capture containers: the chunk reader
// decodes straight out of the mmap into reused SoA scratch and the columns
// are fed to the decoder without ever materialising a RawTrace. Anomaly
// accounting matches the load-then-decode path exactly (the format-matrix
// tests pin this). Returns false with `error` set on a load/parse failure.
bool DecodeBinaryCaptureFile(const std::string& path, const TagFile& names,
                             bool serial, unsigned jobs, bool salvage,
                             DecodedTrace* decoded, std::string* error) {
  MappedFile file;
  if (!file.Open(path)) {
    *error = StrFormat("cannot load capture '%s'\n%s: cannot open file",
                       path.c_str(), path.c_str());
    return false;
  }
  BinaryChunkReader reader(file.view(), salvage);
  auto fail = [&] {
    *error = StrFormat("cannot load capture '%s'", path.c_str());
    AppendTraceDiags(path, reader.diags(), error);
    return false;
  };
  if (!reader.header_ok() || reader.kind() != BinaryKind::kCapture) {
    if (reader.header_ok()) {
      *error = StrFormat(
          "cannot load capture '%s'\n%s: stream container where a capture "
          "was expected (use --follow)",
          path.c_str(), path.c_str());
      return false;
    }
    return fail();
  }
  auto run = [&](auto& engine) {
    engine.NoteDropped(reader.dropped_events());
    engine.SetClockEnvelope(reader.capture_elapsed_ns());
    SoaChunk chunk;
    while (reader.Next(&chunk)) {
      if (chunk.dropped_before > 0) {
        engine.NoteDropped(chunk.dropped_before);
      }
      engine.FeedSoA(chunk.tags.data(), chunk.timestamps.data(),
                     chunk.tags.size());
    }
    engine.NoteCorruptWords(reader.corrupt_words());
    *decoded = engine.Finish(reader.overflowed());
  };
  if (serial) {
    StreamingDecoder decoder(names, reader.timer_bits(),
                             reader.timer_clock_hz(),
                             StreamingOptions{.retain_structure = true});
    run(decoder);
  } else {
    ParallelAnalyzer analyzer(names, reader.timer_bits(),
                              reader.timer_clock_hz(),
                              ParallelOptions{.jobs = jobs});
    run(analyzer);
  }
  if (!salvage && reader.failed()) {
    return fail();
  }
  for (const TraceDiag& d : reader.diags()) {
    std::printf("warning: %s @%d: %s (salvaged)\n", path.c_str(), d.line,
                d.message.c_str());
  }
  return true;
}

// One capture file of either format to a DecodedTrace: binary containers go
// through the zero-copy chunk reader, text through the load-then-decode
// path, both honouring --jobs/--salvage. Shared by the single-capture
// reports and both sides of --diff.
bool DecodeAnyCaptureFile(const std::string& path, const TagFile& names,
                          bool serial, unsigned jobs, bool salvage,
                          DecodedTrace* decoded, std::string* error) {
  CaptureFileInfo finfo;
  if (DetectCaptureFile(path, &finfo) && finfo.format == CaptureFormat::kBinary &&
      !finfo.is_stream) {
    return DecodeBinaryCaptureFile(path, names, serial, jobs, salvage, decoded,
                                   error);
  }
  RawTrace raw;
  std::vector<TraceDiag> capture_diags;
  std::uint64_t corrupt_words = 0;
  const bool loaded =
      salvage ? LoadCaptureSalvage(path, &raw, &capture_diags, &corrupt_words)
              : LoadCapture(path, &raw, &capture_diags);
  if (!loaded) {
    *error = StrFormat("cannot load capture '%s'", path.c_str());
    AppendTraceDiags(path, capture_diags, error);
    return false;
  }
  for (const TraceDiag& d : capture_diags) {
    std::printf("warning: %s:%d: %s (salvaged)\n", path.c_str(), d.line,
                d.message.c_str());
  }
  *decoded = DecodeCapture(raw, names, serial, jobs, corrupt_words);
  return true;
}

void AppendJsonString(const std::string& s, std::string* out) {
  out->push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          *out += StrFormat("\\u%04x", c);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

// Machine-readable report: capture header, the typed anomaly counters, and
// every summary row. Built only from the DecodedTrace, so serial and
// parallel decodes emit byte-identical JSON.
std::string FormatJson(const DecodedTrace& decoded) {
  const Summary summary(decoded);
  auto u64 = [](std::uint64_t v) {
    return StrFormat("%llu", static_cast<unsigned long long>(v));
  };
  std::string out = "{\n";
  out += "  \"elapsed_us\": " + u64(summary.elapsed_us()) + ",\n";
  out += "  \"run_us\": " + u64(summary.run_us()) + ",\n";
  out += "  \"idle_us\": " + u64(summary.idle_us()) + ",\n";
  out += "  \"events\": " + u64(decoded.event_count) + ",\n";
  out += StrFormat("  \"truncated\": %s,\n", decoded.truncated ? "true" : "false");
  out += "  \"anomalies\": {\n";
  out += "    \"corrupt_words\": " + u64(decoded.corrupt_words) + ",\n";
  out += "    \"impossible_deltas\": " + u64(decoded.impossible_deltas) + ",\n";
  out += "    \"wrap_ambiguous_gaps\": " + u64(decoded.wrap_ambiguous_gaps) + ",\n";
  out += "    \"unaccounted_us\": " + u64(ToWholeUsec(decoded.unaccounted_time)) + ",\n";
  out += "    \"unknown_tags\": " + u64(decoded.unknown_tags) + ",\n";
  out += "    \"orphan_exits\": " + u64(decoded.orphan_exits) + ",\n";
  out += "    \"dropped_events\": " + u64(decoded.dropped_events) + ",\n";
  out += "    \"capture_gaps\": " + u64(decoded.capture_gaps) + ",\n";
  out += "    \"unclosed_entries\": " + u64(decoded.unclosed_entries) + ",\n";
  out += "    \"mid_trace_unclosed\": " + u64(decoded.MidTraceUnclosedEntries()) + "\n";
  out += "  },\n";
  out += "  \"functions\": [";
  bool first = true;
  for (const SummaryRow& row : summary.rows()) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"name\": ";
    AppendJsonString(row.name, &out);
    out += ", \"calls\": " + u64(row.calls);
    out += ", \"elapsed_us\": " + u64(row.elapsed_us);
    out += ", \"net_us\": " + u64(row.net_us);
    out += ", \"max_us\": " + u64(row.max_us);
    out += ", \"avg_us\": " + u64(row.avg_us);
    out += ", \"min_us\": " + u64(row.min_us);
    out += StrFormat(", \"pct_real\": %.2f, \"pct_net\": %.2f}", row.pct_real,
                     row.pct_net);
  }
  out += first ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

// Incremental analysis of a chunked stream file: feeds each drained bank to
// a StreamingDecoder, printing a status line and a running Figure 3 summary
// as it goes. `--poll N` re-reads the file N times total (with a short real
// sleep in between) so a still-appending writer can be tailed; new complete
// chunks are picked up where the previous pass stopped. A chunk the writer
// never finished is decoded as a truncated tail at the end.
int FollowMain(const char* path, const TagFile& names, int argc, const char* const* argv,
               std::string* error) {
  std::size_t rows = 20;
  int polls = 1;
  bool salvage = false;
  bool progress = false;
  bool stats = false;
  bool stats_json = false;
  // Default 1: live per-chunk summaries need the serial decoder's stats
  // snapshot. `--jobs 0` (or >1) hands decided chunks to the worker pool
  // instead and prints the summary once, from the merged final trace.
  unsigned jobs = 1;
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_number = [&](std::size_t fallback) -> std::size_t {
      if (i + 1 < argc) {
        std::uint64_t value = 0;
        if (ParseUint(argv[i + 1], &value)) {
          ++i;
          return static_cast<std::size_t>(value);
        }
      }
      return fallback;
    };
    if (arg == "--follow") {
      continue;
    } else if (arg == "--summary") {
      rows = next_number(20);
    } else if (arg == "--poll") {
      polls = static_cast<int>(next_number(1));
    } else if (arg == "--jobs") {
      jobs = static_cast<unsigned>(next_number(0));
    } else if (arg == "--salvage") {
      salvage = true;
    } else if (arg == "--progress") {
      progress = true;
    } else if (arg == "--stats") {
      stats = true;
    } else if (arg == "--stats-json") {
      stats_json = true;
    } else {
      *error = StrFormat("option '%s' is not available with --follow", arg.c_str());
      return 2;
    }
  }

  // Each poll re-reads (and re-parses) the whole file, so the salvage
  // corrupt-word total is cumulative; only the delta since the previous pass
  // is handed to the decoder.
  std::uint64_t corrupt_noted = 0;
  auto load = [&](const char* verb, StreamCapture* capture,
                  std::uint64_t* corrupt_delta) {
    std::vector<TraceDiag> diags;
    std::uint64_t corrupt_total = 0;
    const bool ok = salvage
                        ? LoadStreamSalvage(path, capture, &diags, &corrupt_total)
                        : LoadStream(path, capture, &diags);
    if (!ok) {
      *error = StrFormat("cannot %s stream file '%s'", verb, path);
      AppendTraceDiags(path, diags, error);
      return false;
    }
    if (corrupt_delta != nullptr) {
      *corrupt_delta =
          corrupt_total > corrupt_noted ? corrupt_total - corrupt_noted : 0;
      corrupt_noted = corrupt_total;
    }
    return true;
  };

  StreamCapture capture;
  std::uint64_t corrupt_delta = 0;
  if (!load("load", &capture, &corrupt_delta)) {
    return 1;
  }

  // --progress heartbeat: one line per drained chunk with decode rate
  // against this process's wall clock (the stream's own timestamps measure
  // the *target*, not us). Heartbeats are operator chatter, not report
  // output, so they go to stderr — piping stdout into a JSON consumer stays
  // machine-clean with progress on.
  const auto follow_start = std::chrono::steady_clock::now();
  auto heartbeat = [&](std::uint64_t events, std::uint64_t anomalies) {
    if (!progress) {
      return;
    }
    const double secs =
        std::chrono::duration_cast<std::chrono::duration<double>>(
            std::chrono::steady_clock::now() - follow_start)
            .count();
    const double rate = secs > 0 ? static_cast<double>(events) / secs : 0.0;
    std::fprintf(stderr,
                 "progress: %llu events, %llu anomalies, %.0f events/sec (%.1fs)\n",
                 static_cast<unsigned long long>(events),
                 static_cast<unsigned long long>(anomalies), rate, secs);
  };

  if (jobs != 1) {
    ParallelOptions popts;
    popts.jobs = jobs;
    ParallelAnalyzer analyzer(names, capture.timer_bits, capture.timer_clock_hz, popts);
    analyzer.NoteCorruptWords(corrupt_delta);
    std::size_t fed = 0;
    for (int pass = 0; pass < polls; ++pass) {
      if (pass > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(200));
        if (!load("re-read", &capture, &corrupt_delta)) {
          return 1;
        }
        analyzer.NoteCorruptWords(corrupt_delta);
      }
      const std::size_t complete = capture.chunks.size() - (capture.truncated_tail ? 1 : 0);
      for (; fed < complete; ++fed) {
        const TraceChunk& chunk = capture.chunks[fed];
        analyzer.FeedChunk(chunk);
        std::printf(
            "chunk %zu: %zu events (%llu dropped before) | stream so far: %llu events, "
            "%llu dropped, %zu shards in flight\n",
            fed, chunk.events.size(),
            static_cast<unsigned long long>(chunk.dropped_before),
            static_cast<unsigned long long>(analyzer.events_seen()),
            static_cast<unsigned long long>(analyzer.dropped_events()),
            analyzer.shards_planned());
        heartbeat(analyzer.events_seen(), analyzer.dropped_events());
      }
    }
    bool truncated = false;
    if (capture.truncated_tail && fed < capture.chunks.size()) {
      analyzer.FeedChunk(capture.chunks[fed]);
      ++fed;
      truncated = true;
    }
    const DecodedTrace decoded = analyzer.Finish(truncated);
    std::printf("end of stream: %zu chunks, %llu events, %llu dropped in %llu gaps%s\n",
                fed, static_cast<unsigned long long>(decoded.event_count),
                static_cast<unsigned long long>(decoded.dropped_events),
                static_cast<unsigned long long>(decoded.capture_gaps),
                truncated ? " (truncated tail)" : "");
    std::printf("%s\n", Summary(decoded).Format(rows).c_str());
    PrintTelemetry(stats, stats_json);
    return 0;
  }
  StreamingDecoder decoder(names, capture.timer_bits, capture.timer_clock_hz);
  decoder.NoteCorruptWords(corrupt_delta);
  std::size_t fed = 0;
  for (int pass = 0; pass < polls; ++pass) {
    if (pass > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(200));
      if (!load("re-read", &capture, &corrupt_delta)) {
        return 1;
      }
      decoder.NoteCorruptWords(corrupt_delta);
    }
    const std::size_t complete = capture.chunks.size() - (capture.truncated_tail ? 1 : 0);
    for (; fed < complete; ++fed) {
      const TraceChunk& chunk = capture.chunks[fed];
      decoder.FeedChunk(chunk);
      std::printf(
          "chunk %zu: %zu events (%llu dropped before) | stream so far: %llu events, "
          "%llu dropped, %zu awaiting lookahead\n",
          fed, chunk.events.size(), static_cast<unsigned long long>(chunk.dropped_before),
          static_cast<unsigned long long>(decoder.events_seen()),
          static_cast<unsigned long long>(decoder.dropped_events()), decoder.pending());
      if (progress) {
        heartbeat(decoder.events_seen(), AnomalyTotal(decoder.SnapshotStats()));
      }
      std::printf("%s\n", Summary(decoder.SnapshotStats()).Format(rows).c_str());
    }
  }
  bool truncated = false;
  if (capture.truncated_tail && fed < capture.chunks.size()) {
    // The writer never finished this chunk; decode what made it to disk.
    decoder.FeedChunk(capture.chunks[fed]);
    ++fed;
    truncated = true;
  }
  const DecodedTrace decoded = decoder.Finish(truncated);
  std::printf("end of stream: %zu chunks, %llu events, %llu dropped in %llu gaps%s\n", fed,
              static_cast<unsigned long long>(decoded.event_count),
              static_cast<unsigned long long>(decoded.dropped_events),
              static_cast<unsigned long long>(decoded.capture_gaps),
              truncated ? " (truncated tail)" : "");
  std::printf("%s\n", Summary(decoded).Format(rows).c_str());
  PrintTelemetry(stats, stats_json);
  return 0;
}

// `hwprof_analyze --diff A B <names>`: decode both captures (any format,
// any --jobs) against the shared names file and print the three-granularity
// regression report. Exit codes: 0 no regression, 3 at least one gated row
// regressed beyond --noise-pct (and the --quantum-us floor), 1 load
// failure, 2 usage. `--gate net` demotes the per-call-edge section to
// advisory for cross-variant comparisons.
int DiffMain(int argc, const char* const* argv, std::string* error) {
  if (argc < 5) {
    *error =
        "usage: hwprof_analyze --diff <baseline> <candidate> <names> "
        "[--noise-pct P] [--quantum-us Q] [--gate all|net] [--json] "
        "[--jobs N] [--salvage]";
    return 2;
  }
  const std::string path_a = argv[2];
  const std::string path_b = argv[3];
  const std::string names_path = argv[4];

  double noise_pct = 0.0;
  double quantum_us = 0.0;
  bool gate_edges = true;
  bool json = false;
  unsigned jobs = 0;
  bool serial = false;
  bool salvage = false;
  for (int i = 5; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--noise-pct" && i + 1 < argc) {
      const char* text = argv[++i];
      char* end = nullptr;
      noise_pct = std::strtod(text, &end);
      if (end == text || *end != '\0' || noise_pct < 0.0) {
        *error = StrFormat("--noise-pct needs a non-negative percentage, got '%s'", text);
        return 2;
      }
    } else if (arg == "--quantum-us" && i + 1 < argc) {
      const char* text = argv[++i];
      char* end = nullptr;
      quantum_us = std::strtod(text, &end);
      if (end == text || *end != '\0' || quantum_us < 0.0) {
        *error = StrFormat("--quantum-us needs a non-negative value, got '%s'", text);
        return 2;
      }
    } else if (arg == "--gate" && i + 1 < argc) {
      const std::string value = argv[++i];
      if (value == "all") {
        gate_edges = true;
      } else if (value == "net") {
        gate_edges = false;
      } else {
        *error = StrFormat("--gate must be all or net, got '%s'", value.c_str());
        return 2;
      }
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--jobs" && i + 1 < argc) {
      std::uint64_t value = 0;
      if (!ParseUint(argv[++i], &value)) {
        *error = StrFormat("--jobs needs a number, got '%s'", argv[i]);
        return 2;
      }
      jobs = static_cast<unsigned>(value);
      serial = (jobs == 1);
    } else if (arg == "--salvage") {
      salvage = true;
    } else {
      *error = StrFormat("unknown option '%s' for --diff", arg.c_str());
      return 2;
    }
  }

  std::string names_text;
  TagFile names;
  std::vector<TagDiag> names_diags;
  if (!ReadFileToString(names_path, &names_text) ||
      !TagFile::Parse(names_text, &names, &names_diags)) {
    *error = StrFormat("cannot parse names file '%s'", names_path.c_str());
    for (const TagDiag& d : names_diags) {
      *error += StrFormat("\n%s:%d: %s", names_path.c_str(), d.line, d.message.c_str());
    }
    return 1;
  }

  DecodedTrace baseline;
  DecodedTrace candidate;
  if (!DecodeAnyCaptureFile(path_a, names, serial, jobs, salvage, &baseline, error) ||
      !DecodeAnyCaptureFile(path_b, names, serial, jobs, salvage, &candidate, error)) {
    return 1;
  }

  const TraceDiff diff(baseline, candidate, names.GroupsByName(),
                       DiffOptions{.noise_pct = noise_pct,
                                   .quantum_us = quantum_us,
                                   .gate_edges = gate_edges});
  std::printf("%s", json ? diff.FormatJson().c_str() : diff.FormatText().c_str());
  return diff.HasRegression() ? 3 : 0;
}

}  // namespace

int AnalyzeMain(int argc, const char* const* argv, std::string* error) {
  if (argc >= 2 && std::string(argv[1]) == "--diff") {
    return DiffMain(argc, argv, error);
  }
  if (argc < 3) {
    *error =
        "usage: hwprof_analyze <capture> <names> [--summary N] [--trace N] "
        "[--callgraph N] [--histogram FN] [--groups] [--spl] [--json] "
        "[--salvage] [--jobs N] [--stats] [--stats-json] [--progress] | "
        "<stream> <names> "
        "--follow [--summary N] [--poll N] [--jobs N] [--salvage] "
        "[--progress] [--stats] [--stats-json] | --diff <baseline> "
        "<candidate> <names> [--noise-pct P] [--quantum-us Q] "
        "[--gate all|net] [--json] [--jobs N] [--salvage]";
    return 2;
  }

  std::string names_text;
  TagFile names;
  std::vector<TagDiag> names_diags;
  const bool have_names = ReadFileToString(argv[2], &names_text) &&
                          TagFile::Parse(names_text, &names, &names_diags);
  auto names_error = [&] {
    std::string message = StrFormat("cannot parse names file '%s'", argv[2]);
    for (const TagDiag& d : names_diags) {
      message += StrFormat("\n%s:%d: %s", argv[2], d.line, d.message.c_str());
    }
    return message;
  };

  for (int i = 3; i < argc; ++i) {
    if (std::string(argv[i]) == "--follow") {
      if (!have_names) {
        *error = names_error();
        return 1;
      }
      return FollowMain(argv[1], names, argc, argv, error);
    }
  }

  // `--jobs` and `--salvage` are resolved before decoding; the remaining
  // options are consumed by the report loop below. `--jobs 1` selects the
  // serial decoder outright; any other value shards the decode across a
  // worker pool (0 = hardware concurrency) with byte-identical output.
  unsigned jobs = 0;
  bool serial = false;
  bool salvage = false;
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--jobs" && i + 1 < argc) {
      std::uint64_t value = 0;
      if (ParseUint(argv[i + 1], &value)) {
        jobs = static_cast<unsigned>(value);
        serial = (jobs == 1);
      }
    } else if (arg == "--salvage") {
      salvage = true;
    }
  }

  {
    // Report an unreadable capture before any names-file problem, as the
    // decode itself would.
    std::ifstream probe(argv[1], std::ios::binary);
    if (!probe.good()) {
      *error = StrFormat("cannot load capture '%s'", argv[1]);
      return 1;
    }
  }
  if (!have_names) {
    *error = names_error();
    return 1;
  }
  DecodedTrace decoded;
  if (!DecodeAnyCaptureFile(argv[1], names, serial, jobs, salvage, &decoded,
                            error)) {
    return 1;
  }
  if (decoded.unknown_tags > 0) {
    // Warning chatter goes to stderr: `--json | jq` must keep parsing.
    std::fprintf(stderr,
                 "warning: %llu events carried tags missing from the names file\n",
                 static_cast<unsigned long long>(decoded.unknown_tags));
  }

  bool did_something = false;
  bool stats = false;
  bool stats_json = false;
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_number = [&](std::size_t fallback) -> std::size_t {
      if (i + 1 < argc) {
        std::uint64_t value = 0;
        if (ParseUint(argv[i + 1], &value)) {
          ++i;
          return static_cast<std::size_t>(value);
        }
      }
      return fallback;
    };
    if (arg == "--summary") {
      std::printf("%s\n", Summary(decoded).Format(next_number(20)).c_str());
      did_something = true;
    } else if (arg == "--trace") {
      TraceReportOptions opts;
      opts.max_lines = next_number(60);
      std::printf("%s\n", TraceReport::Format(decoded, opts).c_str());
      did_something = true;
    } else if (arg == "--callgraph") {
      std::printf("%s", CallGraph(decoded).Format(decoded, next_number(10)).c_str());
      did_something = true;
    } else if (arg == "--histogram") {
      if (i + 1 >= argc) {
        *error = "--histogram needs a function name";
        return 2;
      }
      const std::string fn = argv[++i];
      std::printf("%s\n", Histogram::ForFunction(decoded, fn).Format(fn).c_str());
      did_something = true;
    } else if (arg == "--processes") {
      ProcessReport report(decoded);
      std::printf("%s\n", report.Format(decoded).c_str());
      did_something = true;
    } else if (arg == "--spl") {
      Grouping grouping(decoded, Grouping::SplGroup(decoded));
      std::printf("%s\n", grouping.Format().c_str());
      did_something = true;
    } else if (arg == "--groups") {
      // Per-abstraction profile from the names file's group= annotations.
      Grouping grouping(decoded, names.GroupsByName());
      std::printf("%s\n", grouping.Format().c_str());
      did_something = true;
    } else if (arg == "--json") {
      std::printf("%s", FormatJson(decoded).c_str());
      did_something = true;
    } else if (arg == "--stats") {
      stats = true;
      did_something = true;
    } else if (arg == "--stats-json") {
      stats_json = true;
      did_something = true;
    } else if (arg == "--progress") {
      // One post-decode heartbeat on stderr (batch decodes have no chunk
      // loop to beat along with); stdout report output is untouched.
      std::fprintf(stderr, "progress: %llu events, %llu anomalies (decoded)\n",
                   static_cast<unsigned long long>(decoded.event_count),
                   static_cast<unsigned long long>(AnomalyTotal(decoded)));
    } else if (arg == "--jobs") {
      next_number(0);  // already consumed before the decode
    } else if (arg == "--salvage") {
      // already consumed before the load
    } else {
      *error = StrFormat("unknown option '%s'", arg.c_str());
      return 2;
    }
  }
  if (!did_something) {
    std::printf("%s\n", Summary(decoded).Format(20).c_str());
  }
  PrintTelemetry(stats, stats_json);
  return 0;
}

}  // namespace hwprof
