// The host-side analysis tool, as a reusable entry point (the binary's
// main() calls this; tests call it directly with temp files).

#ifndef HWPROF_TOOLS_ANALYZE_MAIN_H_
#define HWPROF_TOOLS_ANALYZE_MAIN_H_

#include <string>

namespace hwprof {

// Runs the analyzer:
//   hwprof_analyze <capture-file> <names-file> [options]
// Options:
//   --summary N      top-N function summary (default report, N=20)
//   --trace N        first N code-path trace lines
//   --callgraph N    gprof-style caller/callee blocks for the top N
//   --histogram FN   per-call net-time histogram of function FN
//   --processes      per-process (activity-context) CPU accounting
//   --spl            spl* subsystem grouping
//   --json           machine-readable report: header stats, the typed
//                    anomaly counters, and every summary row
//   --salvage        tolerate corrupt capture files: unreadable lines are
//                    warned about, counted as corrupt-word anomalies and
//                    skipped instead of failing the load
//   --jobs N         decode with N worker threads (0 or omitted: hardware
//                    concurrency; 1: serial). Output is byte-identical at
//                    every N.
//   --stats          append the pipeline-telemetry section (src/obs
//                    counters, gauges and latency histograms for the load,
//                    decode, shard-replay and merge stages of this run)
//   --stats-json     the same snapshot as a JSON object
//   --progress       heartbeat on STDERR (stdout report output is never
//                    touched, so `--json --progress | jq` keeps parsing).
//                    Batch mode emits one post-decode heartbeat; --follow
//                    emits one line per drained chunk with events decoded,
//                    anomalies so far and the decode rate in events/sec
// Returns 0 on success; prints to stdout, errors to `*error` (a malformed
// capture or names file yields file:line:reason diagnostics and exit 1).
int AnalyzeMain(int argc, const char* const* argv, std::string* error);

}  // namespace hwprof

#endif  // HWPROF_TOOLS_ANALYZE_MAIN_H_
