#include "tools/capture_main.h"

#include <cstdio>
#include <fstream>

#include "src/base/strings.h"
#include "src/base/units.h"
#include "src/profhw/smart_socket.h"
#include "src/workloads/testbed.h"
#include "src/workloads/workloads.h"

namespace hwprof {
namespace {

// --config value: 'baseline' (all knobs off), 'all', or a comma-separated
// subset of cksum,pmap,namei.
bool ParseKernConfig(const std::string& value, KernConfig* knobs, std::string* error) {
  *knobs = KernConfig{};
  if (value == "baseline" || value == "none") {
    return true;
  }
  if (value == "all") {
    knobs->cksum_unrolled = true;
    knobs->pmap_batch_pte = true;
    knobs->namei_cache = true;
    return true;
  }
  for (std::string_view part : Split(value, ',')) {
    if (part == "cksum") {
      knobs->cksum_unrolled = true;
    } else if (part == "pmap") {
      knobs->pmap_batch_pte = true;
    } else if (part == "namei") {
      knobs->namei_cache = true;
    } else {
      *error = StrFormat(
          "--config must be baseline, all, or a comma list of "
          "cksum,pmap,namei; got '%s'",
          std::string(part).c_str());
      return false;
    }
  }
  return true;
}

}  // namespace

int CaptureMain(int argc, const char* const* argv, std::string* error) {
  if (argc < 3) {
    *error =
        "usage: hwprof_capture <net_receive|mixed|fork_exec|lookup> "
        "<capture-out> [<names-out>] [--format text|binary] [--msec N] "
        "[--bytes N] [--iters N] [--config baseline|all|cksum,pmap,namei]";
    return 2;
  }
  const std::string workload = argv[1];
  const std::string capture_path = argv[2];
  std::string names_path;
  int first_option = 3;
  if (argc > 3 && argv[3][0] != '-') {
    names_path = argv[3];
    first_option = 4;
  }

  // Defaults per workload match the committed goldens (tests/golden/ and
  // the golden_test fixtures), so an unmodified tree replays bit-identical
  // captures.
  std::uint64_t msec = workload == "mixed" ? 300 : workload == "lookup" ? 1000 : 2000;
  std::uint64_t bytes = 128 * 1024;
  std::uint64_t iters = workload == "lookup" ? 20 : 3;
  CaptureFormat format = CaptureFormat::kText;
  KernConfig knobs;
  for (int i = first_option; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_uint = [&](std::uint64_t* out) {
      if (i + 1 >= argc || !ParseUint(argv[i + 1], out)) {
        *error = StrFormat("%s needs a number", arg.c_str());
        return false;
      }
      ++i;
      return true;
    };
    if (arg == "--msec") {
      if (!next_uint(&msec)) {
        return 2;
      }
    } else if (arg == "--bytes") {
      if (!next_uint(&bytes)) {
        return 2;
      }
    } else if (arg == "--iters") {
      if (!next_uint(&iters)) {
        return 2;
      }
    } else if (arg == "--config" && i + 1 < argc) {
      if (!ParseKernConfig(argv[++i], &knobs, error)) {
        return 2;
      }
    } else if (arg == "--format" && i + 1 < argc) {
      const std::string value = argv[++i];
      if (value == "text") {
        format = CaptureFormat::kText;
      } else if (value == "binary") {
        format = CaptureFormat::kBinary;
      } else {
        *error = StrFormat("--format must be text or binary, got '%s'", value.c_str());
        return 2;
      }
    } else {
      *error = StrFormat("unknown option '%s'", arg.c_str());
      return 2;
    }
  }

  TestbedConfig tb_config;
  tb_config.kernel.knobs = knobs;
  Testbed tb(tb_config);
  tb.Arm();
  if (workload == "net_receive") {
    RunNetworkReceive(tb, Msec(msec), bytes, false);
  } else if (workload == "mixed") {
    RunMixed(tb, Msec(msec));
  } else if (workload == "fork_exec") {
    RunForkExec(tb, static_cast<int>(iters), Msec(msec));
  } else if (workload == "lookup") {
    RunLookupMix(tb, static_cast<int>(iters), Msec(msec));
  } else {
    *error = StrFormat(
        "unknown workload '%s' (net_receive, mixed, fork_exec, lookup)",
        workload.c_str());
    return 2;
  }
  const RawTrace raw = tb.StopAndUpload();
  if (!SaveCapture(raw, capture_path, format)) {
    *error = StrFormat("cannot write capture '%s'", capture_path.c_str());
    return 1;
  }
  if (!names_path.empty()) {
    std::ofstream names_out(names_path, std::ios::binary | std::ios::trunc);
    names_out << tb.tags().Format();
    if (!names_out.good()) {
      *error = StrFormat("cannot write names file '%s'", names_path.c_str());
      return 1;
    }
  }
  std::printf("%s: %zu events%s -> %s%s%s\n", workload.c_str(),
              raw.events.size(), raw.overflowed ? " (RAM overflowed)" : "",
              capture_path.c_str(), names_path.empty() ? "" : " + ",
              names_path.c_str());
  return 0;
}

}  // namespace hwprof
