// Deterministic workload replay, as a reusable entry point (the
// hwprof_capture binary's main() calls this; tests call it directly with
// temp files). Runs one of the paper's golden workloads on a fresh Testbed
// — the simulator is bit-exact across runs — and writes the capture and
// names file, exactly as the committed baselines under tests/golden/ were
// produced. CI's perf-regression gate replays a workload with this tool
// and hands the fresh capture to `hwprof_analyze --diff` against the
// committed baseline.

#ifndef HWPROF_TOOLS_CAPTURE_MAIN_H_
#define HWPROF_TOOLS_CAPTURE_MAIN_H_

#include <string>

namespace hwprof {

// Runs the replay:
//   hwprof_capture <workload> <capture-out> [<names-out>]
//       [--format text|binary] [--msec N] [--bytes N] [--iters N]
//       [--config baseline|all|cksum,pmap,namei]
// Workloads: net_receive (default: 2000 msec, 131072 bytes — the committed
// golden's parameters), mixed (default 300 msec), fork_exec (default 3
// iterations, 2000 msec cap), lookup (default 20 iterations per worker,
// 1000 msec cap — the namei-heavy open/read/close mix). `--config` replays
// on a kernel with the named KernConfig optimization knobs enabled
// (`baseline`/`none` = all off, the default and byte-identical to the
// committed goldens). Returns 0 on success; prints a one-line summary to
// stdout, errors to `*error`.
int CaptureMain(int argc, const char* const* argv, std::string* error);

}  // namespace hwprof

#endif  // HWPROF_TOOLS_CAPTURE_MAIN_H_
