#include "tools/convert_main.h"

#include <cstdio>
#include <fstream>

#include "src/base/strings.h"
#include "src/profhw/binary_trace.h"
#include "src/profhw/smart_socket.h"

namespace hwprof {
namespace {

void AppendTraceDiags(const std::string& path, const std::vector<TraceDiag>& diags,
                      std::string* message) {
  for (const TraceDiag& d : diags) {
    if (d.line > 0) {
      *message += StrFormat("\n%s:%d: %s", path.c_str(), d.line, d.message.c_str());
    } else {
      *message += StrFormat("\n%s: %s", path.c_str(), d.message.c_str());
    }
  }
}

bool WriteWholeFile(const std::string& path, const std::string& bytes,
                    std::string* error) {
  std::ofstream out(path, std::ios::trunc | std::ios::binary);
  if (!out) {
    *error = StrFormat("cannot open output file '%s'", path.c_str());
    return false;
  }
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!out) {
    *error = StrFormat("cannot write output file '%s'", path.c_str());
    return false;
  }
  return true;
}

}  // namespace

int ConvertMain(int argc, const char* const* argv, std::string* error) {
  if (argc < 3) {
    *error = "usage: hwprof_convert <input> <output> [--to text|binary]";
    return 2;
  }
  const std::string in_path = argv[1];
  const std::string out_path = argv[2];
  std::string to;
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--to" && i + 1 < argc) {
      to = argv[++i];
      if (to != "text" && to != "binary") {
        *error = StrFormat("--to wants 'text' or 'binary', got '%s'", to.c_str());
        return 2;
      }
    } else {
      *error = StrFormat("unknown option '%s'", arg.c_str());
      return 2;
    }
  }

  CaptureFileInfo info;
  if (!DetectCaptureFile(in_path, &info)) {
    *error = StrFormat(
        "cannot identify '%s': expected the binary container magic or an "
        "'hwprof-raw'/'hwprof-stream' text header",
        in_path.c_str());
    return 1;
  }
  const CaptureFormat target =
      to.empty() ? (info.format == CaptureFormat::kText ? CaptureFormat::kBinary
                                                        : CaptureFormat::kText)
      : to == "binary" ? CaptureFormat::kBinary
                       : CaptureFormat::kText;

  std::string bytes;
  std::uint64_t events = 0;
  std::vector<TraceDiag> diags;
  if (info.is_stream) {
    StreamCapture stream;
    if (!LoadStream(in_path, &stream, &diags)) {
      *error = StrFormat("cannot load stream '%s'", in_path.c_str());
      AppendTraceDiags(in_path, diags, error);
      return 1;
    }
    if (stream.truncated_tail) {
      // A torn tail cannot survive a round trip (the partial record or
      // chunk is not representable); converting it would silently lose the
      // "writer was still appending" marker.
      *error = StrFormat(
          "stream '%s' has a torn tail (writer still appending?); refusing "
          "a lossy conversion",
          in_path.c_str());
      return 1;
    }
    events = stream.TotalEvents();
    bytes = target == CaptureFormat::kBinary ? EncodeStreamBinary(stream)
                                             : SerializeStreamText(stream);
  } else {
    RawTrace raw;
    if (!LoadCapture(in_path, &raw, &diags)) {
      *error = StrFormat("cannot load capture '%s'", in_path.c_str());
      AppendTraceDiags(in_path, diags, error);
      return 1;
    }
    events = raw.events.size();
    bytes = target == CaptureFormat::kBinary ? EncodeCaptureBinary(raw)
                                             : raw.Serialize();
  }
  if (!WriteWholeFile(out_path, bytes, error)) {
    return 1;
  }
  std::printf("%s: %s %s -> %s %s (%llu events, %zu bytes)\n", in_path.c_str(),
              info.format == CaptureFormat::kBinary ? "binary" : "text",
              info.is_stream ? "stream" : "capture",
              target == CaptureFormat::kBinary ? "binary" : "text",
              out_path.c_str(), static_cast<unsigned long long>(events),
              bytes.size());
  return 0;
}

}  // namespace hwprof
