// Lossless capture/stream format translation, as a reusable entry point
// (the hwprof_convert binary's main() calls this; tests call it directly
// with temp files).

#ifndef HWPROF_TOOLS_CONVERT_MAIN_H_
#define HWPROF_TOOLS_CONVERT_MAIN_H_

#include <string>

namespace hwprof {

// Runs the converter:
//   hwprof_convert <input> <output> [--to text|binary]
// The input's format and flavour (one-shot capture vs chunked stream) are
// auto-detected from its magic; without --to the format is flipped (text
// becomes binary and vice versa). Conversion is lossless in both
// directions: converting back yields a bit-identical file (stream chunk
// structure and drop counts are preserved exactly; canonical-form inputs —
// anything these tools wrote — round-trip byte-for-byte).
// Returns 0 on success; prints a one-line summary to stdout, errors to
// `*error`.
int ConvertMain(int argc, const char* const* argv, std::string* error);

}  // namespace hwprof

#endif  // HWPROF_TOOLS_CONVERT_MAIN_H_
