#include "tools/export_main.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "src/analysis/decoder.h"
#include "src/analysis/export.h"
#include "src/analysis/parallel.h"
#include "src/base/strings.h"
#include "src/obs/telemetry.h"
#include "src/profhw/smart_socket.h"

namespace hwprof {
namespace {

void AppendTraceDiags(const std::string& path,
                      const std::vector<TraceDiag>& diags,
                      std::string* message) {
  for (const TraceDiag& d : diags) {
    if (d.line > 0) {
      *message +=
          StrFormat("\n%s:%d: %s", path.c_str(), d.line, d.message.c_str());
    } else {
      *message += StrFormat("\n%s: %s", path.c_str(), d.message.c_str());
    }
  }
}

bool ReadFileToString(const std::string& path, std::string* out) {
  std::ifstream in(path);
  if (!in) {
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

// Decodes either capture flavour through either engine; both pairs are
// byte-identical by contract, so the caller's --jobs choice never shows in
// the export.
template <typename Engine>
DecodedTrace DecodeWith(Engine&& engine, const RawTrace* raw,
                        const StreamCapture* stream,
                        std::uint64_t corrupt_words) {
  engine.NoteCorruptWords(corrupt_words);
  if (raw != nullptr) {
    engine.NoteDropped(raw->dropped_events);
    engine.SetClockEnvelope(raw->capture_elapsed_ns);
    engine.Feed(raw->events);
    return engine.Finish(raw->overflowed);
  }
  const std::size_t chunks = stream->chunks.size();
  for (std::size_t i = 0; i < chunks; ++i) {
    engine.FeedChunk(stream->chunks[i]);
  }
  return engine.Finish(stream->truncated_tail);
}

}  // namespace

int ExportMain(int argc, const char* const* argv, std::string* error) {
  if (argc < 3) {
    *error =
        "usage: hwprof_export <capture> <names> [--format trace-event|folded] "
        "[--out FILE] [--jobs N] [--salvage] [--stats] [--telemetry]";
    return 2;
  }
  const std::string capture_path = argv[1];
  const std::string names_path = argv[2];
  std::string format = "trace-event";
  std::string out_path;
  unsigned jobs = 0;
  bool serial = false;
  bool salvage = false;
  bool stats = false;
  bool telemetry = false;
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--format" && i + 1 < argc) {
      format = argv[++i];
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--jobs" && i + 1 < argc) {
      std::uint64_t value = 0;
      if (!ParseUint(argv[i + 1], &value)) {
        *error = StrFormat("--jobs needs a number, got '%s'", argv[i + 1]);
        return 2;
      }
      ++i;
      jobs = static_cast<unsigned>(value);
      serial = (jobs == 1);
    } else if (arg == "--salvage") {
      salvage = true;
    } else if (arg == "--stats") {
      stats = true;
    } else if (arg == "--telemetry") {
      telemetry = true;
    } else {
      *error = StrFormat("unknown option '%s'", arg.c_str());
      return 2;
    }
  }
  if (format != "trace-event" && format != "folded") {
    *error = StrFormat("unknown format '%s' (expected trace-event or folded)",
                       format.c_str());
    return 2;
  }
  if (telemetry && format != "trace-event") {
    *error = "--telemetry requires --format trace-event";
    return 2;
  }

  std::string names_text;
  TagFile names;
  std::vector<TagDiag> names_diags;
  if (!ReadFileToString(names_path, &names_text) ||
      !TagFile::Parse(names_text, &names, &names_diags)) {
    *error = StrFormat("cannot parse names file '%s'", names_path.c_str());
    for (const TagDiag& d : names_diags) {
      *error += StrFormat("\n%s:%d: %s", names_path.c_str(), d.line,
                          d.message.c_str());
    }
    return 1;
  }

  // Auto-detect the capture flavour (and format) from the file's magic.
  CaptureFileInfo finfo;
  if (!DetectCaptureFile(capture_path, &finfo)) {
    // Unrecognisable header: fall through to the capture loader for its
    // detailed diagnostics (a missing file reports there too).
    finfo = CaptureFileInfo{};
  }
  const bool is_stream = finfo.is_stream;

  OBS_SPAN_BEGIN(load);
  RawTrace raw;
  StreamCapture stream;
  std::vector<TraceDiag> diags;
  std::uint64_t corrupt_words = 0;
  bool loaded;
  if (is_stream) {
    loaded = salvage
                 ? LoadStreamSalvage(capture_path, &stream, &diags,
                                     &corrupt_words)
                 : LoadStream(capture_path, &stream, &diags);
  } else {
    loaded = salvage ? LoadCaptureSalvage(capture_path, &raw, &diags,
                                          &corrupt_words)
                     : LoadCapture(capture_path, &raw, &diags);
  }
  OBS_SPAN_END(load, "export.load");
  if (!loaded) {
    *error = StrFormat("cannot load capture '%s'", capture_path.c_str());
    AppendTraceDiags(capture_path, diags, error);
    return 1;
  }
  for (const TraceDiag& d : diags) {
    std::fprintf(stderr, "warning: %s:%d: %s (salvaged)\n",
                 capture_path.c_str(), d.line, d.message.c_str());
  }

  const RawTrace* raw_in = is_stream ? nullptr : &raw;
  const StreamCapture* stream_in = is_stream ? &stream : nullptr;
  const unsigned timer_bits = is_stream ? stream.timer_bits : raw.timer_bits;
  const std::uint64_t timer_hz =
      is_stream ? stream.timer_clock_hz : raw.timer_clock_hz;
  OBS_SPAN_BEGIN(decode);
  const DecodedTrace decoded =
      serial ? DecodeWith(
                   StreamingDecoder(names, timer_bits, timer_hz,
                                    StreamingOptions{.retain_structure = true}),
                   raw_in, stream_in, corrupt_words)
             : DecodeWith(ParallelAnalyzer(names, timer_bits, timer_hz,
                                           ParallelOptions{.jobs = jobs}),
                          raw_in, stream_in, corrupt_words);
  OBS_SPAN_END(decode, "export.decode");

  // The telemetry tracks render only counters whose totals are independent
  // of the decode path chosen by --jobs: the per-decode anomaly ledger
  // (RecordDecodeTelemetry runs identically under both engines) and the
  // load-side socket counters. Engine-internal counters (decode.chunks,
  // parallel.shards, ...) differ between serial and sharded runs and would
  // break the export's byte-identity contract.
  obs::Snapshot telemetry_counters;
  if (telemetry) {
    static constexpr std::string_view kInvariantPrefixes[] = {
        "decode.anomaly.", "decode.finishes", "socket."};
    for (obs::MetricValue& m : obs::GlobalSnapshot().metrics) {
      for (const std::string_view prefix : kInvariantPrefixes) {
        if (StartsWith(m.name, prefix)) {
          telemetry_counters.metrics.push_back(std::move(m));
          break;
        }
      }
    }
  }

  OBS_SPAN_BEGIN(render);
  const std::string rendered =
      format == "trace-event"
          ? ExportTraceEventJson(decoded,
                                 telemetry ? &telemetry_counters : nullptr)
          : ExportFoldedStacks(decoded);
  OBS_SPAN_END(render, "export.render");
  OBS_COUNT("export.bytes", rendered.size());

  if (out_path.empty()) {
    std::fwrite(rendered.data(), 1, rendered.size(), stdout);
  } else {
    std::ofstream out(out_path, std::ios::trunc | std::ios::binary);
    if (!out) {
      *error = StrFormat("cannot open output file '%s'", out_path.c_str());
      return 1;
    }
    out.write(rendered.data(),
              static_cast<std::streamsize>(rendered.size()));
    if (!out) {
      *error = StrFormat("short write to '%s'", out_path.c_str());
      return 1;
    }
  }
  if (stats) {
    std::fprintf(stderr, "-- pipeline telemetry --\n%s",
                 obs::GlobalSnapshot().FormatText(2).c_str());
  }
  return 0;
}

}  // namespace hwprof
