// hwprof_export: convert a capture into standard visualization formats, as
// a reusable entry point (the binary's main() calls this; tests call it
// directly with temp files).

#ifndef HWPROF_TOOLS_EXPORT_MAIN_H_
#define HWPROF_TOOLS_EXPORT_MAIN_H_

#include <string>

namespace hwprof {

// Runs the exporter:
//   hwprof_export <capture-file> <names-file> [options]
// The capture may be either a one-shot `hwprof-raw v1` file or a chunked
// `hwprof-stream v1` file (auto-detected from the header line).
// Options:
//   --format FMT     trace-event (default): Chrome/Perfetto trace-event
//                    JSON — open at ui.perfetto.dev or chrome://tracing.
//                    folded: folded-stack text for flamegraph.pl /
//                    speedscope, weighted by net nanoseconds.
//   --out FILE       write to FILE instead of stdout
//   --jobs N         decode with N worker threads (0 or omitted: hardware
//                    concurrency; 1: serial). The export is byte-identical
//                    at every N.
//   --salvage        tolerate corrupt capture files (as hwprof_analyze)
//   --stats          append the pipeline-telemetry section to stderr
//   --telemetry      (trace-event only) add one "C" counter track per
//                    path-invariant pipeline counter (decode.anomaly.*,
//                    decode.finishes, socket.*) so anomaly totals are
//                    visible on the timeline; still byte-identical at
//                    every --jobs N
// Returns 0 on success; errors land in `*error` with file:line:reason
// diagnostics where the loaders provide them.
int ExportMain(int argc, const char* const* argv, std::string* error);

}  // namespace hwprof

#endif  // HWPROF_TOOLS_EXPORT_MAIN_H_
