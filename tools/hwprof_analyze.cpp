// hwprof_analyze: the standalone host-side analysis tool.
//
// Feed it a capture (as written by SaveCapture / the examples) and the
// names file the kernel was compiled against:
//
//   hwprof_analyze capture.hwprof kernel.names --summary 20 --trace 80

#include <cstdio>
#include <string>

#include "tools/analyze_main.h"

int main(int argc, char** argv) {
  std::string error;
  const int rc = hwprof::AnalyzeMain(argc, argv, &error);
  if (!error.empty()) {
    std::fprintf(stderr, "hwprof_analyze: %s\n", error.c_str());
  }
  return rc;
}
