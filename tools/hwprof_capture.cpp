// hwprof_capture: deterministic replay of the paper's golden workloads to a
// capture file (the CI perf-gate's "fresh run" side):
//
//   hwprof_capture net_receive fresh.capture fresh.names
//   hwprof_capture net_receive slow.capture --msec 3000     # perturbed run

#include <cstdio>
#include <string>

#include "tools/capture_main.h"

int main(int argc, char** argv) {
  std::string error;
  const int rc = hwprof::CaptureMain(argc, argv, &error);
  if (!error.empty()) {
    std::fprintf(stderr, "hwprof_capture: %s\n", error.c_str());
  }
  return rc;
}
