// hwprof_convert: lossless translation between the text and binary capture
// interchanges (both one-shot captures and chunked streams):
//
//   hwprof_convert capture.hwprof capture.hwpb              # flips format
//   hwprof_convert capture.hwpb capture.txt --to text

#include <cstdio>
#include <string>

#include "tools/convert_main.h"

int main(int argc, char** argv) {
  std::string error;
  const int rc = hwprof::ConvertMain(argc, argv, &error);
  if (!error.empty()) {
    std::fprintf(stderr, "hwprof_convert: %s\n", error.c_str());
  }
  return rc;
}
