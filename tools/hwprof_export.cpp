// hwprof_export: standalone trace exporter.
//
// Convert a capture into Chrome/Perfetto trace-event JSON or folded-stack
// flamegraph text:
//
//   hwprof_export capture.hwprof kernel.names --format trace-event --out t.json
//   hwprof_export capture.hwprof kernel.names --format folded | flamegraph.pl

#include <cstdio>
#include <string>

#include "tools/export_main.h"

int main(int argc, char** argv) {
  std::string error;
  const int rc = hwprof::ExportMain(argc, argv, &error);
  if (!error.empty()) {
    std::fprintf(stderr, "hwprof_export: %s\n", error.c_str());
  }
  return rc;
}
