// hwprof_lint: static instrumentation and spl-discipline analyzer.
//
//   hwprof_lint [options] [paths...]
//
//   paths                 files or directories to analyze (default: the
//                         whole src tree)
//   --json                machine-readable findings on stdout
//   --sarif               SARIF 2.1.0 findings on stdout (for CI annotation)
//   --tags FILE           validate FILE as a tag file against the sources
//   --trace FILE          cross-check a saved capture (needs --tags) against
//                         the static call-structure model
//   --model-out FILE      write the call-structure model, resolved call
//                         graph, and per-function summaries as JSON
//   --all                 print suppressed findings too
//   --root DIR            chdir-free prefix applied to the default paths
//
// Exit status: 0 = clean, 1 = unsuppressed findings, 2 = usage or I/O error.

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "src/analysis/decoder.h"
#include "src/instr/tag_file.h"
#include "src/lint/lint.h"
#include "src/lint/rules.h"
#include "src/lint/trace_check.h"
#include "src/profhw/smart_socket.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--json] [--sarif] [--tags FILE] [--trace FILE] "
               "[--model-out FILE] [--all] [--root DIR] [paths...]\n",
               argv0);
  return 2;
}

bool ReadWholeFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return false;
  }
  out->assign(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using hwprof::lint::Finding;

  bool json = false;
  bool sarif = false;
  bool show_all = false;
  std::string tags_path;
  std::string trace_path;
  std::string model_out;
  std::string root;
  std::vector<std::string> paths;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](std::string* out) {
      if (i + 1 >= argc) {
        return false;
      }
      *out = argv[++i];
      return true;
    };
    if (arg == "--json") {
      json = true;
    } else if (arg == "--sarif") {
      sarif = true;
    } else if (arg == "--all") {
      show_all = true;
    } else if (arg == "--tags") {
      if (!next(&tags_path)) return Usage(argv[0]);
    } else if (arg == "--trace") {
      if (!next(&trace_path)) return Usage(argv[0]);
    } else if (arg == "--model-out") {
      if (!next(&model_out)) return Usage(argv[0]);
    } else if (arg == "--root") {
      if (!next(&root)) return Usage(argv[0]);
    } else if (arg == "--help" || arg == "-h") {
      Usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "hwprof_lint: unknown option '%s'\n", arg.c_str());
      return Usage(argv[0]);
    } else {
      paths.push_back(arg);
    }
  }

  if (json && sarif) {
    std::fprintf(stderr, "hwprof_lint: --json and --sarif are exclusive\n");
    return Usage(argv[0]);
  }

  hwprof::lint::LintConfig config;
  if (paths.empty()) {
    const std::filesystem::path base = root.empty() ? "." : root;
    config.paths.push_back((base / "src").generic_string());
  } else {
    config.paths = std::move(paths);
  }
  config.tag_file = tags_path;

  hwprof::lint::LintResult result = hwprof::lint::RunLint(config);
  for (const std::string& error : result.errors) {
    std::fprintf(stderr, "hwprof_lint: %s\n", error.c_str());
  }
  if (!result.errors.empty()) {
    return 2;
  }

  if (!trace_path.empty()) {
    if (tags_path.empty()) {
      std::fprintf(stderr, "hwprof_lint: --trace requires --tags\n");
      return 2;
    }
    std::string tag_text;
    hwprof::TagFile names;
    hwprof::RawTrace raw;
    if (!ReadWholeFile(tags_path, &tag_text) ||
        !hwprof::TagFile::Parse(tag_text, &names)) {
      std::fprintf(stderr, "hwprof_lint: cannot parse tag file '%s'\n",
                   tags_path.c_str());
      return 2;
    }
    if (!hwprof::LoadCapture(trace_path, &raw)) {
      std::fprintf(stderr, "hwprof_lint: cannot load capture '%s'\n",
                   trace_path.c_str());
      return 2;
    }
    const hwprof::DecodedTrace trace = hwprof::Decoder::Decode(raw, names);
    hwprof::lint::CrossCheckTrace(trace, names, result.model, &result.findings);
    hwprof::lint::ApplySuppressions(result.sources, &result.findings);
    hwprof::lint::SortFindings(&result.findings);
  }

  if (!model_out.empty()) {
    std::ofstream out(model_out, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "hwprof_lint: cannot write '%s'\n", model_out.c_str());
      return 2;
    }
    out << hwprof::lint::ModelToJson(result.model,
                                     hwprof::lint::CallGraphToJson(result.graph));
  }

  if (json || sarif) {
    std::vector<Finding> shown;
    for (const Finding& f : result.findings) {
      // SARIF carries suppressed findings as inSource suppressions; plain
      // JSON keeps the historical behavior of hiding them without --all.
      if (sarif || show_all || !f.suppressed) {
        shown.push_back(f);
      }
    }
    std::fputs(sarif ? hwprof::lint::FindingsToSarif(shown).c_str()
                     : hwprof::lint::FindingsToJson(shown).c_str(),
               stdout);
  } else {
    std::size_t suppressed = 0;
    for (const Finding& f : result.findings) {
      if (f.suppressed && !show_all) {
        ++suppressed;
        continue;
      }
      std::printf("%s\n", hwprof::lint::FormatFinding(f).c_str());
    }
    std::printf("hwprof_lint: %zu file%s, %zu finding%s (%zu unsuppressed",
                result.sources.size(), result.sources.size() == 1 ? "" : "s",
                result.findings.size(), result.findings.size() == 1 ? "" : "s",
                result.unsuppressed());
    if (!show_all && suppressed > 0) {
      std::printf(", %zu suppressed hidden", suppressed);
    }
    std::printf(")\n");
  }

  return result.unsuppressed() == 0 ? 0 : 1;
}
