// hwprofd: the fleet ingest daemon. Simulated machines upload captures over
// a local socket; decode workers turn them into Figure-3 summaries; the ops
// protocol (STATUS / METRICS / TENANTS / HEALTH / EVENTS / INGEST) exposes
// the daemon's own telemetry. See tools/hwprofd_main.h for the modes.
//
//   hwprofd serve kernel.names --socket /tmp/hwprofd.sock
//   hwprofd upload --socket /tmp/hwprofd.sock --tenant web1 capture.hwprof
//   hwprofd query --socket /tmp/hwprofd.sock STATUS
//   hwprofd soak --uploaders 100 --metrics-out soak.json

#include <cstdio>
#include <string>

#include "tools/hwprofd_main.h"

int main(int argc, char** argv) {
  std::string error;
  const int rc = hwprof::HwprofdMain(argc, argv, &error);
  if (!error.empty()) {
    std::fprintf(stderr, "hwprofd: %s\n", error.c_str());
  }
  return rc;
}
