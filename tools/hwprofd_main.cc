#include "tools/hwprofd_main.h"

#include <csignal>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/base/strings.h"
#include "src/instr/tag_file.h"
#include "src/service/ingest.h"
#include "src/service/ops_socket.h"
#include "src/service/soak.h"
#include "src/snmp/mib.h"
#include "src/snmp/telemetry_mib.h"

namespace hwprof {

namespace {

volatile std::sig_atomic_t g_stop_requested = 0;

void StopSignalHandler(int /*signum*/) { g_stop_requested = 1; }

bool ReadFileToString(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return false;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

bool ParseSizeFlag(const char* what, const char* value, std::uint64_t* out,
                   std::string* error) {
  if (value == nullptr || !ParseUint(value, out)) {
    *error = StrFormat("%s needs a non-negative integer", what);
    return false;
  }
  return true;
}

int ServeMode(int argc, const char* const* argv, std::string* error) {
  if (argc < 3) {
    *error = "usage: hwprofd serve <names-file> --socket PATH [options]";
    return 1;
  }
  std::string names_text;
  if (!ReadFileToString(argv[2], &names_text)) {
    *error = StrFormat("cannot read names file %s", argv[2]);
    return 1;
  }
  TagFile names;
  std::vector<TagDiag> diags;
  if (!TagFile::Parse(names_text, &names, &diags)) {
    *error = StrFormat("names file %s: %zu parse problem(s)", argv[2],
                       diags.size());
    return 1;
  }

  std::string socket_path;
  service::ServiceOptions options;
  std::uint64_t tick_ms = 250;
  std::uint64_t duration_s = 0;
  for (int i = 3; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const char* next = i + 1 < argc ? argv[i + 1] : nullptr;
    std::uint64_t v = 0;
    if (arg == "--socket" && next != nullptr) {
      socket_path = next;
      ++i;
    } else if (arg == "--workers") {
      if (!ParseSizeFlag("--workers", next, &v, error)) return 1;
      options.workers = static_cast<unsigned>(v);
      ++i;
    } else if (arg == "--tick-ms") {
      if (!ParseSizeFlag("--tick-ms", next, &tick_ms, error)) return 1;
      ++i;
    } else if (arg == "--duration-s") {
      if (!ParseSizeFlag("--duration-s", next, &duration_s, error)) return 1;
      ++i;
    } else if (arg == "--max-upload-bytes") {
      if (!ParseSizeFlag("--max-upload-bytes", next, &v, error)) return 1;
      options.max_upload_bytes = static_cast<std::size_t>(v);
      ++i;
    } else if (arg == "--queue-depth") {
      if (!ParseSizeFlag("--queue-depth", next, &v, error)) return 1;
      options.queue_max_depth = static_cast<std::size_t>(v);
      ++i;
    } else if (arg == "--queue-bytes") {
      if (!ParseSizeFlag("--queue-bytes", next, &v, error)) return 1;
      options.queue_max_bytes = static_cast<std::size_t>(v);
      ++i;
    } else if (arg == "--cache") {
      if (!ParseSizeFlag("--cache", next, &v, error)) return 1;
      options.cache_capacity = static_cast<std::size_t>(v);
      ++i;
    } else if (arg == "--rows") {
      if (!ParseSizeFlag("--rows", next, &v, error)) return 1;
      options.summary_rows = static_cast<std::size_t>(v);
      ++i;
    } else {
      *error = StrFormat("unknown serve option: %s", argv[i]);
      return 1;
    }
  }
  if (socket_path.empty()) {
    *error = "serve needs --socket PATH";
    return 1;
  }
  if (tick_ms == 0) {
    tick_ms = 250;
  }

  service::IngestService service(names, options);
  service::OpsServer server(service, socket_path);
  if (!server.Start()) {
    *error = server.last_error();
    return 1;
  }
  g_stop_requested = 0;
  std::signal(SIGINT, StopSignalHandler);
  std::signal(SIGTERM, StopSignalHandler);
  std::fprintf(stderr, "hwprofd: serving on %s (workers=%u tick=%llums)\n",
               socket_path.c_str(), service.workers(),
               static_cast<unsigned long long>(tick_ms));

  // Live SNMP view: each tick re-publishes the telemetry registry (which
  // carries the service.* counters and gauges) into the profTelemetry
  // subtree, so an agent serving this MIB always answers with daemon state.
  BTreeMib mib;
  const std::uint64_t deadline_ns =
      duration_s == 0 ? 0 : service.NowNs() + duration_s * 1'000'000'000ull;
  while (g_stop_requested == 0 &&
         (deadline_ns == 0 || service.NowNs() < deadline_ns)) {
    service.Tick();
    RefreshTelemetryMib(&mib);
    std::this_thread::sleep_for(std::chrono::milliseconds(tick_ms));
  }

  std::fprintf(stderr, "hwprofd: draining\n");
  service.BeginDrain();
  service.WaitIdle();
  server.Stop();
  service.Stop();
  const service::ServiceStats stats = service.Stats();
  std::fprintf(stderr,
               "hwprofd: done (offered=%llu accepted=%llu summaries=%llu "
               "dropped=%llu malformed=%llu)\n",
               static_cast<unsigned long long>(stats.offered),
               static_cast<unsigned long long>(stats.accepted),
               static_cast<unsigned long long>(stats.summaries),
               static_cast<unsigned long long>(stats.DroppedTotal()),
               static_cast<unsigned long long>(stats.malformed));
  return 0;
}

int QueryMode(int argc, const char* const* argv, std::string* error) {
  std::string socket_path;
  std::string command;
  for (int i = 2; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--socket" && i + 1 < argc) {
      socket_path = argv[++i];
    } else {
      if (!command.empty()) {
        command += " ";
      }
      command += argv[i];
    }
  }
  if (socket_path.empty() || command.empty()) {
    *error = "usage: hwprofd query --socket PATH <COMMAND...>";
    return 1;
  }
  const std::string response =
      service::OpsQuery(socket_path, command, error);
  if (!error->empty()) {
    return 1;
  }
  std::fputs(response.c_str(), stdout);
  // The terminator line is the success signal.
  const bool ok = response == "OK\n" ||
                  response.find("\nOK\n") != std::string::npos;
  return ok ? 0 : 1;
}

int UploadMode(int argc, const char* const* argv, std::string* error) {
  std::string socket_path;
  std::string tenant;
  std::string capture_path;
  for (int i = 2; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--socket" && i + 1 < argc) {
      socket_path = argv[++i];
    } else if (arg == "--tenant" && i + 1 < argc) {
      tenant = argv[++i];
    } else if (capture_path.empty()) {
      capture_path = argv[i];
    } else {
      *error = StrFormat("unexpected upload argument: %s", argv[i]);
      return 1;
    }
  }
  if (socket_path.empty() || tenant.empty() || capture_path.empty()) {
    *error = "usage: hwprofd upload --socket PATH --tenant NAME <capture>";
    return 1;
  }
  std::string payload;
  if (!ReadFileToString(capture_path, &payload)) {
    *error = StrFormat("cannot read capture %s", capture_path.c_str());
    return 1;
  }
  std::uint64_t ingest_id = 0;
  std::string drop_reason;
  const bool accepted = service::OpsUpload(socket_path, tenant, payload,
                                           &ingest_id, &drop_reason, error);
  if (!error->empty()) {
    return 1;
  }
  if (accepted) {
    std::printf("ACCEPT %llu\n", static_cast<unsigned long long>(ingest_id));
    return 0;
  }
  std::printf("DROP %s %llu\n", drop_reason.c_str(),
              static_cast<unsigned long long>(ingest_id));
  return 1;
}

int SoakMode(int argc, const char* const* argv, std::string* error) {
  service::SoakOptions options;
  // CI-friendly defaults: exercise backpressure without multi-MB payloads.
  options.service.max_upload_bytes = 1u << 20;
  std::string metrics_out;
  for (int i = 2; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const char* next = i + 1 < argc ? argv[i + 1] : nullptr;
    std::uint64_t v = 0;
    if (arg == "--uploaders") {
      if (!ParseSizeFlag("--uploaders", next, &v, error)) return 1;
      options.uploaders = static_cast<unsigned>(v);
      ++i;
    } else if (arg == "--uploads") {
      if (!ParseSizeFlag("--uploads", next, &v, error)) return 1;
      options.uploads_per_uploader = static_cast<unsigned>(v);
      ++i;
    } else if (arg == "--tenants") {
      if (!ParseSizeFlag("--tenants", next, &v, error)) return 1;
      options.tenants = static_cast<unsigned>(v);
      ++i;
    } else if (arg == "--distinct") {
      if (!ParseSizeFlag("--distinct", next, &v, error)) return 1;
      options.distinct_captures = static_cast<unsigned>(v);
      ++i;
    } else if (arg == "--events") {
      if (!ParseSizeFlag("--events", next, &v, error)) return 1;
      options.events_per_capture = static_cast<int>(v);
      ++i;
    } else if (arg == "--seed") {
      if (!ParseSizeFlag("--seed", next, &v, error)) return 1;
      options.seed = v;
      ++i;
    } else if (arg == "--workers") {
      if (!ParseSizeFlag("--workers", next, &v, error)) return 1;
      options.service.workers = static_cast<unsigned>(v);
      ++i;
    } else if (arg == "--metrics-out" && next != nullptr) {
      metrics_out = next;
      ++i;
    } else {
      *error = StrFormat("unknown soak option: %s", argv[i]);
      return 1;
    }
  }
  const service::SoakReport report = service::RunSoak(options);
  const std::string json = report.FormatJson();
  std::printf("%s\n", json.c_str());
  if (!metrics_out.empty()) {
    std::ofstream out(metrics_out, std::ios::binary | std::ios::trunc);
    if (!out) {
      *error = StrFormat("cannot write %s", metrics_out.c_str());
      return 1;
    }
    out << json << "\n";
  }
  if (!report.ok()) {
    *error = "soak audit failed (see report JSON)";
    return 1;
  }
  return 0;
}

}  // namespace

int HwprofdMain(int argc, const char* const* argv, std::string* error) {
  error->clear();
  if (argc < 2) {
    *error =
        "usage: hwprofd <serve|query|upload|soak> ... (see tools/hwprofd_main.h)";
    return 1;
  }
  const std::string_view mode = argv[1];
  if (mode == "serve") {
    return ServeMode(argc, argv, error);
  }
  if (mode == "query") {
    return QueryMode(argc, argv, error);
  }
  if (mode == "upload") {
    return UploadMode(argc, argv, error);
  }
  if (mode == "soak") {
    return SoakMode(argc, argv, error);
  }
  *error = StrFormat("unknown mode: %.*s", static_cast<int>(mode.size()),
                     mode.data());
  return 1;
}

}  // namespace hwprof
