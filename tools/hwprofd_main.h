// hwprofd: the fleet ingest daemon, as a reusable entry point (the binary's
// main() calls this; tests call it directly with temp paths).

#ifndef HWPROF_TOOLS_HWPROFD_MAIN_H_
#define HWPROF_TOOLS_HWPROFD_MAIN_H_

#include <string>

namespace hwprof {

// Runs the daemon tool. Modes:
//
//   hwprofd serve <names-file> --socket PATH [options]
//       Long-running ingest daemon on an AF_UNIX socket (ops queries and
//       UPLOAD framing; see src/service/ops_socket.h). Options:
//         --workers N           decode worker threads (default 2)
//         --tick-ms N           self-snapshot / SNMP refresh period (def 250)
//         --duration-s N        exit after N seconds (0 = until SIGINT/TERM)
//         --max-upload-bytes N  admission size cap (default 4194304)
//         --queue-depth N       per-shard queue depth cap (default 64)
//         --queue-bytes N       global queued-bytes cap (default 16777216)
//         --cache N             summary cache entries (default 256)
//         --rows N              summary rows per upload (default 0 = all)
//       Each tick refreshes the profTelemetry SNMP subtree from the live
//       registry, so an agent serving the daemon's MIB stays current.
//
//   hwprofd query --socket PATH <COMMAND...>
//       Sends one ops command (words are joined) and prints the response.
//       Exits 0 when the response ends with "OK", 1 otherwise.
//
//   hwprofd upload --socket PATH --tenant NAME <capture-file>
//       Uploads one capture payload; prints the ACCEPT/DROP reply line.
//       Exits 0 on ACCEPT, 1 on DROP or transport failure.
//
//   hwprofd soak [--uploaders N] [--uploads N] [--tenants N] [--distinct N]
//                [--events N] [--seed N] [--workers N] [--metrics-out FILE]
//       In-process soak (src/service/soak.h): N concurrent uploaders against
//       one service, then the accounting / bounded-memory / offline-
//       equivalence audit. Prints the report JSON; --metrics-out also writes
//       it to FILE. Exits 0 iff the audit passed.
//
// Returns the process exit code; human-readable failures land in `*error`.
int HwprofdMain(int argc, const char* const* argv, std::string* error);

}  // namespace hwprof

#endif  // HWPROF_TOOLS_HWPROFD_MAIN_H_
