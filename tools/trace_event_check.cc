// trace_event_check: minimal schema checker for Chrome/Perfetto trace-event
// JSON (the CI export-goldens job pipes hwprof_export output through this).
//
//   trace_event_check file.json [more.json ...]
//   hwprof_export capture names | trace_event_check -
//
// Checks (see ValidateTraceEventJson): well-formed JSON, a traceEvents
// array, required fields per phase ("X" needs name/ts/dur>=0, "i" needs
// name/ts, "C" needs name/ts/args, "M" needs a name), and proper slice
// nesting per (pid, tid). Exits 0 when every input passes.

#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>

#include "src/analysis/export.h"

namespace {

bool ReadInput(const std::string& path, std::string* out) {
  if (path == "-") {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    *out = buffer.str();
    return true;
  }
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return false;
  }
  std::string text;
  char chunk[4096];
  std::size_t n;
  while ((n = std::fread(chunk, 1, sizeof chunk, f)) > 0) {
    text.append(chunk, n);
  }
  std::fclose(f);
  *out = std::move(text);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: trace_event_check <file.json|-> [...]\n");
    return 2;
  }
  int rc = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string path = argv[i];
    std::string text;
    if (!ReadInput(path, &text)) {
      std::fprintf(stderr, "trace_event_check: cannot read '%s'\n",
                   path.c_str());
      rc = 1;
      continue;
    }
    std::string error;
    if (!hwprof::ValidateTraceEventJson(text, &error)) {
      std::fprintf(stderr, "trace_event_check: %s: %s\n", path.c_str(),
                   error.c_str());
      rc = 1;
      continue;
    }
    hwprof::TraceEventTotals totals;
    if (!hwprof::SummarizeTraceEventJson(text, &totals, &error)) {
      std::fprintf(stderr, "trace_event_check: %s: %s\n", path.c_str(),
                   error.c_str());
      rc = 1;
      continue;
    }
    std::printf("%s: ok (%llu slices, %llu instants, %llu counter samples)\n",
                path.c_str(), static_cast<unsigned long long>(totals.slices),
                static_cast<unsigned long long>(totals.instants),
                static_cast<unsigned long long>(totals.counter_samples));
  }
  return rc;
}
